// Package partition implements the partition schemes of Section V-B of the
// Voltage paper: a scheme is a vector of ratios [p1…pK] with 0 ≤ pi ≤ 1 and
// Σpi = 1, mapping each device to a contiguous, non-overlapping range of
// sequence positions whose union covers the whole sequence.
package partition

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidScheme is returned when a ratio vector violates the paper's two
// conditions.
var ErrInvalidScheme = errors.New("partition: invalid scheme")

// Range is a half-open interval of sequence positions [From, To) assigned
// to one device.
type Range struct {
	From, To int
}

// Len returns the number of positions in the range.
func (r Range) Len() int { return r.To - r.From }

// Empty reports whether the range contains no positions.
func (r Range) Empty() bool { return r.To <= r.From }

// String implements fmt.Stringer.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.From, r.To) }

// Scheme is a ratio vector over K devices.
type Scheme struct {
	ratios []float64
}

const ratioTolerance = 1e-9

// New validates and wraps a ratio vector. The conditions are those of the
// paper: every ratio in [0, 1] and the ratios summing to 1 (within floating
// point tolerance).
func New(ratios []float64) (*Scheme, error) {
	if len(ratios) == 0 {
		return nil, fmt.Errorf("%w: empty ratio vector", ErrInvalidScheme)
	}
	var sum float64
	for i, p := range ratios {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("%w: ratio[%d] = %v outside [0,1]", ErrInvalidScheme, i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > ratioTolerance {
		return nil, fmt.Errorf("%w: ratios sum to %v, want 1", ErrInvalidScheme, sum)
	}
	cp := make([]float64, len(ratios))
	copy(cp, ratios)
	return &Scheme{ratios: cp}, nil
}

// Even returns the uniform scheme over k devices ([1/k … 1/k]), the setting
// used throughout the paper's evaluation.
func Even(k int) (*Scheme, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrInvalidScheme, k)
	}
	ratios := make([]float64, k)
	for i := range ratios {
		ratios[i] = 1 / float64(k)
	}
	return &Scheme{ratios: ratios}, nil
}

// Weighted returns a scheme proportional to the given non-negative device
// weights (e.g. relative compute speeds), normalizing them to sum to 1. It
// supports the heterogeneous-device flexibility of §V-B.
func Weighted(weights []float64) (*Scheme, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("%w: empty weights", ErrInvalidScheme)
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weight[%d] = %v", ErrInvalidScheme, i, w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("%w: all weights zero", ErrInvalidScheme)
	}
	ratios := make([]float64, len(weights))
	for i, w := range weights {
		ratios[i] = w / sum
	}
	return &Scheme{ratios: ratios}, nil
}

// K returns the number of devices in the scheme.
func (s *Scheme) K() int { return len(s.ratios) }

// Ratios returns a copy of the ratio vector.
func (s *Scheme) Ratios() []float64 {
	cp := make([]float64, len(s.ratios))
	copy(cp, s.ratios)
	return cp
}

// Ranges maps the scheme onto a sequence of length n, returning one Range
// per device. Boundaries are computed from cumulative ratios with rounding,
// which guarantees the ranges are contiguous, non-overlapping and cover
// [0, n) exactly — the paper's ∪Tpi(x) = T(x), Tpi ∩ Tpj = ∅ conditions —
// even when n is not divisible by K.
func (s *Scheme) Ranges(n int) ([]Range, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: sequence length %d", ErrInvalidScheme, n)
	}
	out := make([]Range, len(s.ratios))
	var cum float64
	prev := 0
	for i, p := range s.ratios {
		cum += p
		end := int(math.Round(cum * float64(n)))
		if end > n {
			end = n
		}
		if i == len(s.ratios)-1 {
			end = n // absorb rounding residue on the last device
		}
		if end < prev {
			end = prev
		}
		out[i] = Range{From: prev, To: end}
		prev = end
	}
	return out, nil
}

// Range returns device i's position range for a sequence of length n.
func (s *Scheme) Range(i, n int) (Range, error) {
	if i < 0 || i >= len(s.ratios) {
		return Range{}, fmt.Errorf("%w: device %d of %d", ErrInvalidScheme, i, len(s.ratios))
	}
	rs, err := s.Ranges(n)
	if err != nil {
		return Range{}, err
	}
	return rs[i], nil
}

// String implements fmt.Stringer.
func (s *Scheme) String() string {
	return fmt.Sprintf("Scheme%v", s.ratios)
}
