package partition

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		ratios []float64
		ok     bool
	}{
		{"even pair", []float64{0.5, 0.5}, true},
		{"uneven", []float64{0.2, 0.3, 0.5}, true},
		{"single", []float64{1}, true},
		{"zero entry allowed", []float64{0, 1}, true},
		{"empty", nil, false},
		{"negative", []float64{-0.1, 1.1}, false},
		{"above one", []float64{1.5, -0.5}, false},
		{"sum below one", []float64{0.2, 0.2}, false},
		{"sum above one", []float64{0.8, 0.8}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.ratios)
			if (err == nil) != c.ok {
				t.Fatalf("New(%v) err=%v, want ok=%v", c.ratios, err, c.ok)
			}
			if err != nil && !errors.Is(err, ErrInvalidScheme) {
				t.Fatalf("error not ErrInvalidScheme: %v", err)
			}
		})
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []float64{0.5, 0.5}
	s, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 99
	if s.Ratios()[0] != 0.5 {
		t.Fatal("scheme aliases caller slice")
	}
}

func TestEven(t *testing.T) {
	s, err := Even(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 {
		t.Fatalf("K = %d", s.K())
	}
	for _, p := range s.Ratios() {
		if p != 0.25 {
			t.Fatalf("ratio %v", p)
		}
	}
	if _, err := Even(0); !errors.Is(err, ErrInvalidScheme) {
		t.Fatalf("want ErrInvalidScheme, got %v", err)
	}
}

func TestWeighted(t *testing.T) {
	s, err := Weighted([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Ratios()
	if r[0] != 0.25 || r[1] != 0.75 {
		t.Fatalf("Weighted ratios = %v", r)
	}
	if _, err := Weighted(nil); !errors.Is(err, ErrInvalidScheme) {
		t.Fatal("want error on empty")
	}
	if _, err := Weighted([]float64{0, 0}); !errors.Is(err, ErrInvalidScheme) {
		t.Fatal("want error on all-zero")
	}
	if _, err := Weighted([]float64{-1, 2}); !errors.Is(err, ErrInvalidScheme) {
		t.Fatal("want error on negative")
	}
}

func TestRangesCoverAndDisjoint(t *testing.T) {
	// The paper's two conditions: no overlap, full coverage. Check for
	// arbitrary schemes and lengths.
	f := func(seed int64) bool {
		x := uint64(seed)
		next := func(mod int) int {
			x = x*6364136223846793005 + 1442695040888963407
			return int(x>>33) % mod
		}
		k := 1 + next(8)
		weights := make([]float64, k)
		for i := range weights {
			weights[i] = float64(1 + next(10))
		}
		s, err := Weighted(weights)
		if err != nil {
			return false
		}
		n := next(500)
		rs, err := s.Ranges(n)
		if err != nil {
			return false
		}
		if len(rs) != k {
			return false
		}
		prev := 0
		for _, r := range rs {
			if r.From != prev || r.To < r.From {
				return false
			}
			prev = r.To
		}
		return prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangesEvenSplit(t *testing.T) {
	s, _ := Even(3)
	rs, err := s.Ranges(9)
	if err != nil {
		t.Fatal(err)
	}
	want := []Range{{0, 3}, {3, 6}, {6, 9}}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("Ranges = %v, want %v", rs, want)
		}
	}
}

func TestRangesIndivisible(t *testing.T) {
	s, _ := Even(3)
	rs, err := s.Ranges(10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rs {
		if r.Len() < 3 || r.Len() > 4 {
			t.Fatalf("lopsided range %v in %v", r, rs)
		}
		total += r.Len()
	}
	if total != 10 {
		t.Fatalf("ranges cover %d of 10", total)
	}
}

func TestRangesNegativeLength(t *testing.T) {
	s, _ := Even(2)
	if _, err := s.Ranges(-1); !errors.Is(err, ErrInvalidScheme) {
		t.Fatalf("want ErrInvalidScheme, got %v", err)
	}
}

func TestRangesZeroLength(t *testing.T) {
	s, _ := Even(3)
	rs, err := s.Ranges(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !r.Empty() {
			t.Fatalf("non-empty range %v for n=0", r)
		}
	}
}

func TestRange(t *testing.T) {
	s, _ := Even(2)
	r, err := s.Range(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r != (Range{5, 10}) {
		t.Fatalf("Range = %v", r)
	}
	if _, err := s.Range(2, 10); !errors.Is(err, ErrInvalidScheme) {
		t.Fatalf("want ErrInvalidScheme for OOB device, got %v", err)
	}
	if _, err := s.Range(-1, 10); !errors.Is(err, ErrInvalidScheme) {
		t.Fatalf("want ErrInvalidScheme for negative device, got %v", err)
	}
}

func TestZeroRatioDeviceGetsEmptyRange(t *testing.T) {
	s, err := New([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.Ranges(7)
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Empty() || rs[1].Len() != 7 {
		t.Fatalf("Ranges = %v", rs)
	}
}

func TestStrings(t *testing.T) {
	if (Range{1, 4}).String() != "[1,4)" {
		t.Fatal("Range.String")
	}
	s, _ := Even(2)
	if s.String() == "" {
		t.Fatal("Scheme.String empty")
	}
}
