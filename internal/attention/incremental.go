package attention

import (
	"fmt"
	"math"

	"voltage/internal/tensor"
)

// This file implements KV-cached incremental attention for autoregressive
// decoding — the natural extension of Voltage to generation workloads.
// After a (possibly distributed) prefill over the prompt, each device
// caches the K and V projections of every layer; decoding one token then
// costs O(N·F) per layer instead of re-running the full O(N²)+O(N·F²)
// stack, and the only traffic per step is the token id and one F-vector.

// HeadState is the cached K/V of one attention head: t×FH matrices that
// grow by one row per decoded token.
type HeadState struct {
	K, V *tensor.Matrix
}

// Len returns the number of cached positions.
func (s *HeadState) Len() int {
	if s.K == nil {
		return 0
	}
	return s.K.Rows()
}

// appendRows grows a cached matrix by the rows of add.
func appendRows(cur, add *tensor.Matrix) (*tensor.Matrix, error) {
	if cur == nil || cur.Rows() == 0 {
		return add, nil
	}
	return tensor.ConcatRows(cur, add)
}

// PrefillHead builds a head's cache from the full layer input x (the
// prompt prefill): K = x·WK, V = x·WV.
func PrefillHead(h *HeadWeights, x *tensor.Matrix) (*HeadState, error) {
	k, err := tensor.MatMul(x, h.WK)
	if err != nil {
		return nil, err
	}
	v, err := tensor.MatMul(x, h.WV)
	if err != nil {
		return nil, err
	}
	return &HeadState{K: k, V: v}, nil
}

// StepHead computes the attention output of one new position given its
// layer input row xNew (1×F), appending the position's K/V to the cache.
// Causality is implicit: the new position attends to every cached position
// plus itself and nothing later exists yet.
func StepHead(h *HeadWeights, s *HeadState, xNew *tensor.Matrix) (*tensor.Matrix, error) {
	if xNew.Rows() != 1 || xNew.Cols() != h.F() {
		return nil, fmt.Errorf("%w: incremental input %dx%d, want 1x%d",
			tensor.ErrShape, xNew.Rows(), xNew.Cols(), h.F())
	}
	kNew, err := tensor.MatMul(xNew, h.WK)
	if err != nil {
		return nil, err
	}
	vNew, err := tensor.MatMul(xNew, h.WV)
	if err != nil {
		return nil, err
	}
	if s.K, err = appendRows(s.K, kNew); err != nil {
		return nil, err
	}
	if s.V, err = appendRows(s.V, vNew); err != nil {
		return nil, err
	}
	q, err := tensor.MatMul(xNew, h.WQ)
	if err != nil {
		return nil, err
	}
	scores, err := tensor.MatMulT(q, s.K) // 1×t
	if err != nil {
		return nil, err
	}
	tensor.ScaleInPlace(scores, float32(1/math.Sqrt(float64(h.FH()))))
	tensor.SoftmaxRowsInPlace(scores)
	return tensor.MatMul(scores, s.V)
}

// MultiHeadState is the cached K/V of a complete multi-head block.
type MultiHeadState struct {
	Heads []*HeadState
}

// Len returns the number of cached positions.
func (s *MultiHeadState) Len() int {
	if len(s.Heads) == 0 {
		return 0
	}
	return s.Heads[0].Len()
}

// Prefill builds the block's cache from the full layer input x.
func (m *MultiHead) Prefill(x *tensor.Matrix) (*MultiHeadState, error) {
	heads := make([]*HeadState, len(m.Heads))
	for i, h := range m.Heads {
		s, err := PrefillHead(h, x)
		if err != nil {
			return nil, fmt.Errorf("head %d: %w", i, err)
		}
		heads[i] = s
	}
	return &MultiHeadState{Heads: heads}, nil
}

// Step computes the multi-head attention output (1×F, after the WO
// projection and bias) for one new position, appending to the cache.
func (m *MultiHead) Step(s *MultiHeadState, xNew *tensor.Matrix) (*tensor.Matrix, error) {
	if len(s.Heads) != len(m.Heads) {
		return nil, fmt.Errorf("%w: state has %d heads, block has %d",
			tensor.ErrShape, len(s.Heads), len(m.Heads))
	}
	outs := make([]*tensor.Matrix, len(m.Heads))
	for i, h := range m.Heads {
		o, err := StepHead(h, s.Heads[i], xNew)
		if err != nil {
			return nil, fmt.Errorf("head %d: %w", i, err)
		}
		outs[i] = o
	}
	cat, err := tensor.ConcatCols(outs...)
	if err != nil {
		return nil, err
	}
	proj, err := tensor.MatMul(cat, m.WO)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(proj, m.BO); err != nil {
		return nil, err
	}
	return proj, nil
}
