package attention

import (
	"errors"
	"testing"

	"voltage/internal/tensor"
)

// prefillStates builds two independent but identical cache sets for the
// given per-sequence prompt lengths (prefill is deterministic, so running
// it twice yields bit-identical states).
func prefillStates(t *testing.T, mh *MultiHead, lens []int) (a, b []*MultiHeadState) {
	t.Helper()
	for copyIdx := 0; copyIdx < 2; copyIdx++ {
		states := make([]*MultiHeadState, len(lens))
		for i, n := range lens {
			rng := tensor.NewRNG(int64(300 + i))
			x := rng.Normal(n, mh.F(), 1)
			s, err := mh.Prefill(x)
			if err != nil {
				t.Fatal(err)
			}
			states[i] = s
		}
		if copyIdx == 0 {
			a = states
		} else {
			b = states
		}
	}
	return a, b
}

func TestStepBatchBitIdenticalToSoloSteps(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(290), 3, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Three sequences at different cache lengths — exactly the membership
	// shape of a continuous batch.
	batched, solo := prefillStates(t, mh, []int{5, 2, 7})
	rng := tensor.NewRNG(299)
	for round := 0; round < 4; round++ {
		xNew := rng.Normal(len(batched), mh.F(), 1)
		got, err := mh.StepBatch(batched, xNew)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range solo {
			row, err := xNew.RowSlice(i, i+1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := mh.Step(s, row)
			if err != nil {
				t.Fatal(err)
			}
			gotRow, err := got.RowSlice(i, i+1)
			if err != nil {
				t.Fatal(err)
			}
			if !gotRow.Equal(want) {
				t.Fatalf("round %d sequence %d: batched step not bit-identical to solo", round, i)
			}
		}
		// Caches must agree too — the next step's inputs depend on them.
		for i := range batched {
			for h := range batched[i].Heads {
				if !batched[i].Heads[h].K.Equal(solo[i].Heads[h].K) ||
					!batched[i].Heads[h].V.Equal(solo[i].Heads[h].V) {
					t.Fatalf("round %d sequence %d head %d: caches diverged", round, i, h)
				}
			}
		}
	}
}

func TestStepBatchOfOneMatchesStep(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(310), 2, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	batched, solo := prefillStates(t, mh, []int{4})
	xNew := tensor.NewRNG(311).Normal(1, 16, 1)
	got, err := mh.StepBatch(batched, xNew)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mh.Step(solo[0], xNew)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("degenerate batch of one differs from solo Step")
	}
}

func TestStepBatchShapeErrors(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(320), 2, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mh.StepBatch(nil, tensor.New(0, 16)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for empty batch, got %v", err)
	}
	states := []*MultiHeadState{{Heads: []*HeadState{{}, {}}}}
	if _, err := mh.StepBatch(states, tensor.New(2, 16)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for row-count mismatch, got %v", err)
	}
	bad := []*MultiHeadState{{Heads: []*HeadState{{}}}}
	if _, err := mh.StepBatch(bad, tensor.New(1, 16)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for head-count mismatch, got %v", err)
	}
}
