// Package attention implements the self-attention computation orders of
// Section IV of the Voltage paper and the adaptive order selection of
// Algorithm 1.
//
// All orders compute the same mathematical object — the output partition
//
//	Ap(x) = softmax(x_p·WQ·WKᵀ·xᵀ / √FH) · x · WV
//
// for a slice x_p of the input positions — but with different matrix
// association orders and therefore different FLOP counts. The package
// executes any order numerically and exposes the adaptive selection that
// picks the cheapest one for the given input and partition sizes.
package attention

import (
	"fmt"
	"math"

	"voltage/internal/flopcount"
	"voltage/internal/tensor"
)

// HeadWeights holds the projection weights of one attention head.
// WQ, WK, WV are F×FH matrices.
type HeadWeights struct {
	WQ, WK, WV *tensor.Matrix
	// FusedQK caches WQ·WKᵀ (F×F) for the fused orders. It is computed
	// lazily by ensureFused; nil until first needed.
	fusedQK *tensor.Matrix
}

// NewHeadWeights validates and wraps one head's projections.
func NewHeadWeights(wq, wk, wv *tensor.Matrix) (*HeadWeights, error) {
	if wq.Rows() != wk.Rows() || wq.Rows() != wv.Rows() ||
		wq.Cols() != wk.Cols() || wq.Cols() != wv.Cols() {
		return nil, fmt.Errorf("%w: head weights WQ %dx%d WK %dx%d WV %dx%d",
			tensor.ErrShape, wq.Rows(), wq.Cols(), wk.Rows(), wk.Cols(), wv.Rows(), wv.Cols())
	}
	return &HeadWeights{WQ: wq, WK: wk, WV: wv}, nil
}

// F returns the input feature dimensionality.
func (h *HeadWeights) F() int { return h.WQ.Rows() }

// FH returns the per-head feature dimensionality.
func (h *HeadWeights) FH() int { return h.WQ.Cols() }

func (h *HeadWeights) ensureFused() *tensor.Matrix {
	if h.fusedQK == nil {
		fused, err := tensor.MatMulT(h.WQ, h.WK) // WQ·WKᵀ, F×F
		if err != nil {
			panic(err) // shapes validated at construction
		}
		h.fusedQK = fused
	}
	return h.fusedQK
}

// Compute returns Ap(x) for the given order. x is the full N×F input, xp is
// the P×F partition (rows pFrom..pFrom+P of x); order determines the
// association.
//
// xp must be a row slice of x for the result to be meaningful; the function
// does not verify the aliasing, only the shapes.
func Compute(h *HeadWeights, x, xp *tensor.Matrix, order flopcount.Order) (*tensor.Matrix, error) {
	if x.Cols() != h.F() || xp.Cols() != h.F() {
		return nil, fmt.Errorf("%w: input cols %d/%d vs F %d",
			tensor.ErrShape, x.Cols(), xp.Cols(), h.F())
	}
	scores, err := scoreMatrix(h, x, xp, order)
	if err != nil {
		return nil, err
	}
	tensor.ScaleInPlace(scores, float32(1/math.Sqrt(float64(h.FH()))))
	tensor.SoftmaxRowsInPlace(scores)
	return valueProduct(h, x, scores, order)
}

// scoreMatrix computes the raw P×N score matrix x_p·WQ·WKᵀ·xᵀ under the
// order's association (before scaling and softmax).
func scoreMatrix(h *HeadWeights, x, xp *tensor.Matrix, order flopcount.Order) (*tensor.Matrix, error) {
	switch order {
	case flopcount.OrderNaive, flopcount.OrderQKtLateV:
		// (x_p WQ)(x WK)ᵀ — compute Q and K in advance.
		q, err := tensor.MatMul(xp, h.WQ)
		if err != nil {
			return nil, err
		}
		k, err := tensor.MatMul(x, h.WK)
		if err != nil {
			return nil, err
		}
		return tensor.MatMulT(q, k)
	case flopcount.OrderReordered, flopcount.OrderQWkEarlyV:
		// ((x_p WQ) WKᵀ) xᵀ — never materialize K.
		q, err := tensor.MatMul(xp, h.WQ)
		if err != nil {
			return nil, err
		}
		qwk, err := tensor.MatMulT(q, h.WK) // q·WKᵀ, P×F
		if err != nil {
			return nil, err
		}
		return tensor.MatMulT(qwk, x) // (q·WKᵀ)·xᵀ, P×N
	case flopcount.OrderFusedQKEarly, flopcount.OrderFusedQKLate:
		// (x_p (WQ WKᵀ)) xᵀ with the fused F×F weight.
		fused := h.ensureFused()
		xf, err := tensor.MatMul(xp, fused)
		if err != nil {
			return nil, err
		}
		return tensor.MatMulT(xf, x)
	case flopcount.OrderFusedQKRight:
		// x_p ((WQ WKᵀ) xᵀ)
		fused := h.ensureFused()
		fx, err := tensor.MatMulT(fused, x) // (WQWKᵀ)·xᵀ, F×N
		if err != nil {
			return nil, err
		}
		return tensor.MatMul(xp, fx)
	case flopcount.OrderInsideOut:
		// x_p (WQ (WKᵀ xᵀ))
		kx, err := tensor.MatMul(h.WK.T(), x.T()) // FH×N
		if err != nil {
			return nil, err
		}
		wqkx, err := tensor.MatMul(h.WQ, kx) // F×N
		if err != nil {
			return nil, err
		}
		return tensor.MatMul(xp, wqkx)
	default:
		return nil, fmt.Errorf("attention: unknown order %v", order)
	}
}

// valueProduct applies the softmaxed P×N score matrix s to x·WV under the
// order's value association (paper Eq. 6).
func valueProduct(h *HeadWeights, x, s *tensor.Matrix, order flopcount.Order) (*tensor.Matrix, error) {
	switch order {
	case flopcount.OrderNaive, flopcount.OrderQWkEarlyV,
		flopcount.OrderFusedQKEarly, flopcount.OrderFusedQKRight, flopcount.OrderInsideOut:
		// S·(x·WV) — compute V in advance.
		v, err := tensor.MatMul(x, h.WV)
		if err != nil {
			return nil, err
		}
		return tensor.MatMul(s, v)
	case flopcount.OrderReordered, flopcount.OrderQKtLateV, flopcount.OrderFusedQKLate:
		// (S·x)·WV — leave WV until last.
		sx, err := tensor.MatMul(s, x)
		if err != nil {
			return nil, err
		}
		return tensor.MatMul(sx, h.WV)
	default:
		return nil, fmt.Errorf("attention: unknown order %v", order)
	}
}

// ComputeAdaptive evaluates Ap(x) with the order Theorem 2 proves optimal
// for the given (N, P, F, FH), returning the output and the chosen order.
func ComputeAdaptive(h *HeadWeights, x, xp *tensor.Matrix) (*tensor.Matrix, flopcount.Order, error) {
	s := flopcount.Shape{N: x.Rows(), P: xp.Rows(), F: h.F(), FH: h.FH()}
	order := flopcount.SelectOrder(s)
	out, err := Compute(h, x, xp, order)
	return out, order, err
}

// MultiHead holds the weights of a complete multi-head self-attention
// block: H heads plus the output projection WO (H·FH × F) and its bias.
type MultiHead struct {
	Heads []*HeadWeights
	WO    *tensor.Matrix
	BO    []float32
}

// NewMultiHead validates the per-head shapes against the output projection.
func NewMultiHead(heads []*HeadWeights, wo *tensor.Matrix, bo []float32) (*MultiHead, error) {
	if len(heads) == 0 {
		return nil, fmt.Errorf("%w: no attention heads", tensor.ErrShape)
	}
	f, fh := heads[0].F(), heads[0].FH()
	for i, h := range heads {
		if h.F() != f || h.FH() != fh {
			return nil, fmt.Errorf("%w: head %d shape %dx%d vs %dx%d",
				tensor.ErrShape, i, h.F(), h.FH(), f, fh)
		}
	}
	if wo.Rows() != len(heads)*fh || wo.Cols() != f {
		return nil, fmt.Errorf("%w: WO %dx%d, want %dx%d",
			tensor.ErrShape, wo.Rows(), wo.Cols(), len(heads)*fh, f)
	}
	if len(bo) != f {
		return nil, fmt.Errorf("%w: BO length %d, want %d", tensor.ErrShape, len(bo), f)
	}
	return &MultiHead{Heads: heads, WO: wo, BO: bo}, nil
}

// H returns the number of heads.
func (m *MultiHead) H() int { return len(m.Heads) }

// F returns the model feature dimensionality.
func (m *MultiHead) F() int { return m.Heads[0].F() }

// FH returns the per-head feature dimensionality.
func (m *MultiHead) FH() int { return m.Heads[0].FH() }

// Forward computes MultiHead(x)_p = Concat(A¹p(x),…,A^Hp(x))·WO + BO for
// the partition xp, using the given order for every head. Pass x as both
// arguments with order OrderNaive for the classic full (single-device)
// multi-head attention.
func (m *MultiHead) Forward(x, xp *tensor.Matrix, order flopcount.Order) (*tensor.Matrix, error) {
	outs := make([]*tensor.Matrix, len(m.Heads))
	for i, h := range m.Heads {
		o, err := Compute(h, x, xp, order)
		if err != nil {
			return nil, fmt.Errorf("head %d: %w", i, err)
		}
		outs[i] = o
	}
	cat, err := tensor.ConcatCols(outs...)
	if err != nil {
		return nil, err
	}
	proj, err := tensor.MatMul(cat, m.WO)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(proj, m.BO); err != nil {
		return nil, err
	}
	return proj, nil
}

// ForwardAdaptive runs Forward with the Theorem 2-optimal order and reports
// which order was used. All heads share the same (N, P, F, FH) so a single
// selection applies to every head, exactly as in Algorithm 1.
func (m *MultiHead) ForwardAdaptive(x, xp *tensor.Matrix) (*tensor.Matrix, flopcount.Order, error) {
	s := flopcount.Shape{N: x.Rows(), P: xp.Rows(), F: m.F(), FH: m.FH()}
	order := flopcount.SelectOrder(s)
	out, err := m.Forward(x, xp, order)
	return out, order, err
}

// Cost returns the analytic Γ of a Forward call under the given order.
func (m *MultiHead) Cost(n, p int, order flopcount.Order) (int64, error) {
	s := flopcount.Shape{N: n, P: p, F: m.F(), FH: m.FH()}
	headCost, err := flopcount.Cost(s, order)
	if err != nil {
		return 0, err
	}
	proj := int64(p) * int64(m.H()*m.FH()) * int64(m.F())
	return int64(m.H())*headCost + proj, nil
}

// RandomMultiHead builds a deterministic, Xavier-initialized multi-head
// block for tests, benchmarks and synthetic experiments.
func RandomMultiHead(rng *tensor.RNG, h, f, fh int) (*MultiHead, error) {
	heads := make([]*HeadWeights, h)
	for i := range heads {
		hw, err := NewHeadWeights(
			rng.XavierNormal(f, fh), rng.XavierNormal(f, fh), rng.XavierNormal(f, fh))
		if err != nil {
			return nil, err
		}
		heads[i] = hw
	}
	return NewMultiHead(heads, rng.XavierNormal(h*fh, f), tensor.Zeros(f))
}
