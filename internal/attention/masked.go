package attention

import (
	"fmt"
	"math"

	"voltage/internal/flopcount"
	"voltage/internal/tensor"
)

// Options controls a masked/offset attention computation.
//
// Causal masking is applied to the P×N score matrix before the softmax, so
// it composes with every computation order: all orders materialize the same
// score matrix, they only differ in how they reach it. RowOffset gives the
// global position of xp's first row within x so the mask lines up when xp
// is an interior partition.
type Options struct {
	Order     flopcount.Order
	Causal    bool
	RowOffset int
}

// negInf is the additive mask value; after softmax the masked entries are
// exactly zero because exp(-inf) underflows to 0.
var negInf = float32(math.Inf(-1))

// maskCausal sets scores[i][j] = -inf for j > RowOffset+i, i.e. position
// RowOffset+i may not attend to any later position.
func maskCausal(scores *tensor.Matrix, rowOffset int) {
	for i := 0; i < scores.Rows(); i++ {
		limit := rowOffset + i + 1
		if limit >= scores.Cols() {
			continue
		}
		row := scores.Row(i)
		for j := limit; j < len(row); j++ {
			row[j] = negInf
		}
	}
}

// ComputeWithOptions is Compute with optional causal masking. With
// opts.Causal false it is equivalent to Compute(h, x, xp, opts.Order).
func ComputeWithOptions(h *HeadWeights, x, xp *tensor.Matrix, opts Options) (*tensor.Matrix, error) {
	if x.Cols() != h.F() || xp.Cols() != h.F() {
		return nil, fmt.Errorf("%w: input cols %d/%d vs F %d",
			tensor.ErrShape, x.Cols(), xp.Cols(), h.F())
	}
	if opts.Causal && (opts.RowOffset < 0 || opts.RowOffset+xp.Rows() > x.Rows()) {
		return nil, fmt.Errorf("%w: row offset %d + P %d outside N %d",
			tensor.ErrShape, opts.RowOffset, xp.Rows(), x.Rows())
	}
	scores, err := scoreMatrix(h, x, xp, opts.Order)
	if err != nil {
		return nil, err
	}
	tensor.ScaleInPlace(scores, float32(1/math.Sqrt(float64(h.FH()))))
	if opts.Causal {
		maskCausal(scores, opts.RowOffset)
	}
	tensor.SoftmaxRowsInPlace(scores)
	return valueProduct(h, x, scores, opts.Order)
}

// ForwardWithOptions is MultiHead.Forward with optional causal masking.
func (m *MultiHead) ForwardWithOptions(x, xp *tensor.Matrix, opts Options) (*tensor.Matrix, error) {
	outs := make([]*tensor.Matrix, len(m.Heads))
	for i, h := range m.Heads {
		o, err := ComputeWithOptions(h, x, xp, opts)
		if err != nil {
			return nil, fmt.Errorf("head %d: %w", i, err)
		}
		outs[i] = o
	}
	cat, err := tensor.ConcatCols(outs...)
	if err != nil {
		return nil, err
	}
	proj, err := tensor.MatMul(cat, m.WO)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(proj, m.BO); err != nil {
		return nil, err
	}
	return proj, nil
}
