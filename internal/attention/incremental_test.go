package attention

import (
	"errors"
	"testing"

	"voltage/internal/flopcount"
	"voltage/internal/tensor"
)

func TestStepHeadMatchesFullCausalAttention(t *testing.T) {
	// Prefilling a prompt and stepping token by token must reproduce the
	// rows of the full causal attention output exactly (same math,
	// different order of evaluation).
	head := randomHead(t, 201, 24, 8)
	rng := tensor.NewRNG(202)
	x := rng.Normal(10, 24, 1)
	full, err := ComputeWithOptions(head, x, x, Options{Order: flopcount.OrderNaive, Causal: true})
	if err != nil {
		t.Fatal(err)
	}
	// Prefill on the first 6 positions, step the remaining 4.
	prefix, _ := x.RowSlice(0, 6)
	state, err := PrefillHead(head, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if state.Len() != 6 {
		t.Fatalf("state len %d", state.Len())
	}
	for pos := 6; pos < 10; pos++ {
		row, _ := x.RowSlice(pos, pos+1)
		out, err := StepHead(head, state, row)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.RowSlice(pos, pos+1)
		if !out.AlmostEqual(want, 1e-4) {
			d, _ := out.MaxAbsDiff(want)
			t.Fatalf("incremental position %d differs from full causal by %v", pos, d)
		}
	}
	if state.Len() != 10 {
		t.Fatalf("state len after steps %d", state.Len())
	}
}

func TestStepHeadFromEmptyState(t *testing.T) {
	head := randomHead(t, 210, 16, 4)
	rng := tensor.NewRNG(211)
	x := rng.Normal(3, 16, 1)
	full, err := ComputeWithOptions(head, x, x, Options{Order: flopcount.OrderNaive, Causal: true})
	if err != nil {
		t.Fatal(err)
	}
	state := &HeadState{}
	for pos := 0; pos < 3; pos++ {
		row, _ := x.RowSlice(pos, pos+1)
		out, err := StepHead(head, state, row)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.RowSlice(pos, pos+1)
		if !out.AlmostEqual(want, 1e-4) {
			t.Fatalf("from-empty incremental position %d differs", pos)
		}
	}
}

func TestStepHeadShapeErrors(t *testing.T) {
	head := randomHead(t, 220, 16, 4)
	state := &HeadState{}
	bad := tensor.New(2, 16)
	if _, err := StepHead(head, state, bad); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for multi-row step, got %v", err)
	}
	bad2 := tensor.New(1, 7)
	if _, err := StepHead(head, state, bad2); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for wrong width, got %v", err)
	}
}

func TestMultiHeadPrefillStepMatchesFull(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(230), 3, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(231)
	x := rng.Normal(8, 24, 1)
	full, err := mh.ForwardWithOptions(x, x, Options{Order: flopcount.OrderNaive, Causal: true})
	if err != nil {
		t.Fatal(err)
	}
	prefix, _ := x.RowSlice(0, 5)
	state, err := mh.Prefill(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if state.Len() != 5 {
		t.Fatalf("state len %d", state.Len())
	}
	for pos := 5; pos < 8; pos++ {
		row, _ := x.RowSlice(pos, pos+1)
		out, err := mh.Step(state, row)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.RowSlice(pos, pos+1)
		if !out.AlmostEqual(want, 1e-3) {
			t.Fatalf("multi-head incremental position %d differs", pos)
		}
	}
}

func TestStepStateHeadCountMismatch(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(240), 2, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	state := &MultiHeadState{Heads: []*HeadState{{}}}
	row := tensor.New(1, 16)
	if _, err := mh.Step(state, row); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMultiHeadStateLenEmpty(t *testing.T) {
	s := &MultiHeadState{}
	if s.Len() != 0 {
		t.Fatal("empty state Len")
	}
}
