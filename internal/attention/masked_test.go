package attention

import (
	"errors"
	"testing"

	"voltage/internal/flopcount"
	"voltage/internal/tensor"
)

func TestCausalMaskZeroesFuture(t *testing.T) {
	head := randomHead(t, 101, 16, 4)
	rng := tensor.NewRNG(102)
	x := rng.Normal(8, 16, 1)
	// Position 0 may only attend to itself: its output must be invariant
	// to changes in later positions.
	xp, err := x.RowSlice(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Order: flopcount.OrderNaive, Causal: true, RowOffset: 0}
	out1, err := ComputeWithOptions(head, x, xp, opts)
	if err != nil {
		t.Fatal(err)
	}
	x2 := x.Clone()
	for j := 0; j < 16; j++ {
		x2.Set(7, j, 42)
	}
	xp2, _ := x2.RowSlice(0, 1)
	out2, err := ComputeWithOptions(head, x2, xp2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !out1.AlmostEqual(out2, 1e-6) {
		t.Fatal("causal mask leaked future positions into position 0")
	}
}

func TestCausalMaskAllOrdersAgree(t *testing.T) {
	head := randomHead(t, 110, 24, 6)
	rng := tensor.NewRNG(111)
	x := rng.Normal(12, 24, 1)
	xp, err := x.RowSlice(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ComputeWithOptions(head, x, xp, Options{Order: flopcount.OrderNaive, Causal: true, RowOffset: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range flopcount.AllOrders[1:] {
		got, err := ComputeWithOptions(head, x, xp, Options{Order: o, Causal: true, RowOffset: 4})
		if err != nil {
			t.Fatalf("order %v: %v", o, err)
		}
		if !got.AlmostEqual(ref, 1e-3) {
			t.Fatalf("order %v disagrees under causal mask", o)
		}
	}
}

func TestCausalPartitionMatchesFull(t *testing.T) {
	// Partitioned causal attention must equal the row slice of full
	// causal attention.
	head := randomHead(t, 120, 16, 8)
	rng := tensor.NewRNG(121)
	x := rng.Normal(10, 16, 1)
	full, err := ComputeWithOptions(head, x, x, Options{Order: flopcount.OrderNaive, Causal: true})
	if err != nil {
		t.Fatal(err)
	}
	xp, _ := x.RowSlice(3, 7)
	part, err := ComputeWithOptions(head, x, xp, Options{Order: flopcount.OrderReordered, Causal: true, RowOffset: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := full.RowSlice(3, 7)
	if !part.AlmostEqual(want, 1e-3) {
		t.Fatal("causal partition differs from full slice")
	}
}

func TestComputeWithOptionsValidation(t *testing.T) {
	head := randomHead(t, 130, 16, 4)
	rng := tensor.NewRNG(131)
	x := rng.Normal(5, 16, 1)
	xp, _ := x.RowSlice(0, 2)
	if _, err := ComputeWithOptions(head, x, xp, Options{Order: flopcount.OrderNaive, Causal: true, RowOffset: 4}); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for offset overflow, got %v", err)
	}
	if _, err := ComputeWithOptions(head, x, xp, Options{Order: flopcount.OrderNaive, Causal: true, RowOffset: -1}); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for negative offset, got %v", err)
	}
	bad := rng.Normal(5, 3, 1)
	if _, err := ComputeWithOptions(head, bad, xp, Options{Order: flopcount.OrderNaive}); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for feature mismatch, got %v", err)
	}
}

func TestNonCausalOptionsMatchesCompute(t *testing.T) {
	head := randomHead(t, 140, 16, 4)
	rng := tensor.NewRNG(141)
	x := rng.Normal(9, 16, 1)
	xp, _ := x.RowSlice(2, 6)
	a, err := Compute(head, x, xp, flopcount.OrderReordered)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeWithOptions(head, x, xp, Options{Order: flopcount.OrderReordered})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("ComputeWithOptions(non-causal) != Compute")
	}
}

func TestMultiHeadForwardWithOptionsCausal(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(150), 2, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(151)
	x := rng.Normal(8, 16, 1)
	full, err := mh.ForwardWithOptions(x, x, Options{Order: flopcount.OrderNaive, Causal: true})
	if err != nil {
		t.Fatal(err)
	}
	// Assemble two causal partitions.
	top, _ := x.RowSlice(0, 4)
	bottom, _ := x.RowSlice(4, 8)
	outTop, err := mh.ForwardWithOptions(x, top, Options{Order: flopcount.OrderReordered, Causal: true, RowOffset: 0})
	if err != nil {
		t.Fatal(err)
	}
	outBottom, err := mh.ForwardWithOptions(x, bottom, Options{Order: flopcount.OrderReordered, Causal: true, RowOffset: 4})
	if err != nil {
		t.Fatal(err)
	}
	assembled, err := tensor.ConcatRows(outTop, outBottom)
	if err != nil {
		t.Fatal(err)
	}
	if !assembled.AlmostEqual(full, 1e-3) {
		t.Fatal("causal multi-head partitions do not assemble to full output")
	}
	// Error propagation path.
	if _, err := mh.ForwardWithOptions(x, top, Options{Order: flopcount.Order(99)}); err == nil {
		t.Fatal("want error for unknown order")
	}
}
