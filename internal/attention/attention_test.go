package attention

import (
	"errors"
	"testing"
	"testing/quick"

	"voltage/internal/flopcount"
	"voltage/internal/tensor"
)

func randomHead(t testing.TB, seed int64, f, fh int) *HeadWeights {
	t.Helper()
	rng := tensor.NewRNG(seed)
	h, err := NewHeadWeights(rng.XavierNormal(f, fh), rng.XavierNormal(f, fh), rng.XavierNormal(f, fh))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHeadWeightsShapeCheck(t *testing.T) {
	rng := tensor.NewRNG(1)
	_, err := NewHeadWeights(rng.Normal(8, 2, 1), rng.Normal(8, 3, 1), rng.Normal(8, 2, 1))
	if !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	h := randomHead(t, 1, 8, 2)
	if h.F() != 8 || h.FH() != 2 {
		t.Fatalf("F/FH = %d/%d", h.F(), h.FH())
	}
}

func TestAllOrdersAgree(t *testing.T) {
	// Every computation order is an algebraic rewrite of the same
	// expression: outputs must agree within float tolerance. This is the
	// central correctness property behind Section IV.
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		hNum := 1 + rng.Intn(4)
		fh := 1 + rng.Intn(16)
		fdim := hNum * fh
		n := 2 + rng.Intn(30)
		p := 1 + rng.Intn(n)
		head := randomHead(t, seed+1, fdim, fh)
		x := rng.Normal(n, fdim, 1)
		xp, err := x.RowSlice(0, p)
		if err != nil {
			return false
		}
		ref, err := Compute(head, x, xp, flopcount.OrderNaive)
		if err != nil {
			return false
		}
		for _, o := range flopcount.AllOrders[1:] {
			out, err := Compute(head, x, xp, o)
			if err != nil {
				t.Logf("order %v: %v", o, err)
				return false
			}
			if !out.AlmostEqual(ref, 1e-3) {
				d, _ := out.MaxAbsDiff(ref)
				t.Logf("order %v differs from naive by %v (seed %d)", o, d, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestComputePartitionMatchesFullSlice(t *testing.T) {
	// Ap(x) must equal the corresponding rows of the full A(x): computing
	// a partition is exact, not an approximation.
	rng := tensor.NewRNG(77)
	head := randomHead(t, 78, 32, 8)
	x := rng.Normal(20, 32, 1)
	full, err := Compute(head, x, x, flopcount.OrderNaive)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 5}, {5, 12}, {12, 20}} {
		xp, err := x.RowSlice(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		part, order, err := ComputeAdaptive(head, x, xp)
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.RowSlice(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if !part.AlmostEqual(want, 1e-3) {
			t.Fatalf("partition [%d,%d) (order %v) differs from full output", r[0], r[1], order)
		}
	}
}

func TestComputeShapeErrors(t *testing.T) {
	head := randomHead(t, 5, 16, 4)
	rng := tensor.NewRNG(6)
	x := rng.Normal(10, 16, 1)
	bad := rng.Normal(10, 8, 1)
	if _, err := Compute(head, bad, x, flopcount.OrderNaive); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := Compute(head, x, x, flopcount.Order(99)); err == nil {
		t.Fatal("want error for unknown order")
	}
}

func TestFusedQKCached(t *testing.T) {
	head := randomHead(t, 9, 16, 16)
	rng := tensor.NewRNG(10)
	x := rng.Normal(8, 16, 1)
	if head.fusedQK != nil {
		t.Fatal("fusedQK computed eagerly")
	}
	if _, err := Compute(head, x, x, flopcount.OrderFusedQKLate); err != nil {
		t.Fatal(err)
	}
	first := head.fusedQK
	if first == nil {
		t.Fatal("fusedQK not cached")
	}
	if _, err := Compute(head, x, x, flopcount.OrderFusedQKEarly); err != nil {
		t.Fatal(err)
	}
	if head.fusedQK != first {
		t.Fatal("fusedQK recomputed")
	}
}

func TestMultiHeadValidation(t *testing.T) {
	rng := tensor.NewRNG(20)
	h1 := randomHead(t, 21, 16, 4)
	h2 := randomHead(t, 22, 16, 8) // mismatched FH
	if _, err := NewMultiHead([]*HeadWeights{h1, h2}, rng.Normal(8, 16, 1), tensor.Zeros(16)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for mixed heads, got %v", err)
	}
	if _, err := NewMultiHead(nil, rng.Normal(8, 16, 1), tensor.Zeros(16)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for no heads, got %v", err)
	}
	h3 := randomHead(t, 23, 16, 4)
	if _, err := NewMultiHead([]*HeadWeights{h1, h3}, rng.Normal(99, 16, 1), tensor.Zeros(16)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for WO shape, got %v", err)
	}
	if _, err := NewMultiHead([]*HeadWeights{h1, h3}, rng.Normal(8, 16, 1), tensor.Zeros(3)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("want ErrShape for BO length, got %v", err)
	}
}

func TestRandomMultiHeadAccessors(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(31), 4, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mh.H() != 4 || mh.F() != 32 || mh.FH() != 8 {
		t.Fatalf("H/F/FH = %d/%d/%d", mh.H(), mh.F(), mh.FH())
	}
}

func TestMultiHeadPartitionsAssembleToFull(t *testing.T) {
	// Concatenating the partition outputs of all devices must reproduce
	// the full multi-head output (paper §V-B: ∪ Tp(x) = T(x)).
	rng := tensor.NewRNG(40)
	mh, err := RandomMultiHead(tensor.NewRNG(41), 2, 24, 12)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.Normal(18, 24, 1)
	full, err := mh.Forward(x, x, flopcount.OrderNaive)
	if err != nil {
		t.Fatal(err)
	}
	ranges := [][2]int{{0, 6}, {6, 12}, {12, 18}}
	parts := make([]*tensor.Matrix, 0, len(ranges))
	for _, r := range ranges {
		xp, err := x.RowSlice(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := mh.ForwardAdaptive(x, xp)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, out)
	}
	assembled, err := tensor.ConcatRows(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !assembled.AlmostEqual(full, 1e-3) {
		d, _ := assembled.MaxAbsDiff(full)
		t.Fatalf("assembled partitions differ from full output by %v", d)
	}
}

func TestForwardAdaptiveSelectsPerTheorem2(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(50), 8, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(51)
	x := rng.Normal(64, 64, 1)

	// Full partition: naive must be selected (Theorem 2 remark).
	_, order, err := mh.ForwardAdaptive(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if order != flopcount.OrderNaive {
		t.Fatalf("full partition selected %v", order)
	}

	// Tiny partition of a long input: reordered must be selected.
	xp, err := x.RowSlice(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, order, err = mh.ForwardAdaptive(x, xp)
	if err != nil {
		t.Fatal(err)
	}
	if order != flopcount.OrderReordered {
		t.Fatalf("P=1 selected %v", order)
	}
}

func TestMultiHeadCost(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(60), 4, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := mh.Cost(100, 25, flopcount.OrderNaive)
	if err != nil {
		t.Fatal(err)
	}
	s := flopcount.Shape{N: 100, P: 25, F: 32, FH: 8}
	want := 4*flopcount.MustCost(s, flopcount.OrderNaive) + int64(25*32*32)
	if c != want {
		t.Fatalf("Cost = %d, want %d", c, want)
	}
	if _, err := mh.Cost(0, 0, flopcount.OrderNaive); err == nil {
		t.Fatal("want error for invalid shape")
	}
}

func TestForwardErrorPropagatesHeadIndex(t *testing.T) {
	mh, err := RandomMultiHead(tensor.NewRNG(70), 2, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.New(4, 7)
	if _, err := mh.Forward(bad, bad, flopcount.OrderNaive); err == nil {
		t.Fatal("want error for bad input shape")
	}
}

func BenchmarkComputeNaiveP16N256(b *testing.B)     { benchOrder(b, flopcount.OrderNaive, 16) }
func BenchmarkComputeReorderedP16N256(b *testing.B) { benchOrder(b, flopcount.OrderReordered, 16) }

func benchOrder(b *testing.B, o flopcount.Order, p int) {
	head := randomHead(b, 1, 512, 64)
	rng := tensor.NewRNG(2)
	x := rng.Normal(256, 512, 1)
	xp, err := x.RowSlice(0, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(head, x, xp, o); err != nil {
			b.Fatal(err)
		}
	}
}
