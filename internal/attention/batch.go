package attention

import (
	"fmt"
	"math"

	"voltage/internal/tensor"
)

// Iteration-level batched decoding: StepBatch advances B independent
// sequences by one position each in a single pass. The position-wise
// projections (Q/K/V, the WO output projection) fuse across the batch
// dimension — one matmul over a B×F input instead of B matmuls over 1×F —
// while the attention scores are computed per sequence against that
// sequence's own K/V cache, since caches differ in length and content.
//
// Exactness: tensor.MatMul computes each output row independently with an
// identical floating-point operation order regardless of the operand's row
// count, LayerNorm/softmax/bias are row-wise, and the per-sequence score
// path is byte-for-byte the solo StepHead code. Row i of a StepBatch over
// states[0..B) is therefore bit-identical to a solo Step on states[i] —
// the property the distributed batched decoder's tests pin down.

// StepBatch computes the multi-head attention output (B×F, after the WO
// projection and bias) for one new position of each of B sequences,
// appending each position to its sequence's cache. Row i of xNew is
// sequence i's layer input; states[i] is its cache.
func (m *MultiHead) StepBatch(states []*MultiHeadState, xNew *tensor.Matrix) (*tensor.Matrix, error) {
	b := len(states)
	if b == 0 {
		return nil, fmt.Errorf("%w: empty batch", tensor.ErrShape)
	}
	if xNew.Rows() != b || xNew.Cols() != m.F() {
		return nil, fmt.Errorf("%w: batched input %dx%d, want %dx%d",
			tensor.ErrShape, xNew.Rows(), xNew.Cols(), b, m.F())
	}
	for i, s := range states {
		if len(s.Heads) != len(m.Heads) {
			return nil, fmt.Errorf("%w: state %d has %d heads, block has %d",
				tensor.ErrShape, i, len(s.Heads), len(m.Heads))
		}
	}
	scale := float32(1 / math.Sqrt(float64(m.FH())))
	headOuts := make([]*tensor.Matrix, len(m.Heads))
	for hi, h := range m.Heads {
		// Fused across the batch: the new position's K/V/Q projections.
		kNew, err := tensor.MatMul(xNew, h.WK)
		if err != nil {
			return nil, fmt.Errorf("head %d: %w", hi, err)
		}
		vNew, err := tensor.MatMul(xNew, h.WV)
		if err != nil {
			return nil, fmt.Errorf("head %d: %w", hi, err)
		}
		q, err := tensor.MatMul(xNew, h.WQ)
		if err != nil {
			return nil, fmt.Errorf("head %d: %w", hi, err)
		}
		// Per sequence: append to its cache and attend over it.
		out := tensor.New(b, h.FH())
		for i, s := range states {
			hs := s.Heads[hi]
			ki, err := kNew.RowSlice(i, i+1)
			if err != nil {
				return nil, err
			}
			vi, err := vNew.RowSlice(i, i+1)
			if err != nil {
				return nil, err
			}
			if hs.K, err = appendRows(hs.K, ki); err != nil {
				return nil, err
			}
			if hs.V, err = appendRows(hs.V, vi); err != nil {
				return nil, err
			}
			qi, err := q.RowSlice(i, i+1)
			if err != nil {
				return nil, err
			}
			scores, err := tensor.MatMulT(qi, hs.K) // 1×t_i
			if err != nil {
				return nil, err
			}
			tensor.ScaleInPlace(scores, scale)
			tensor.SoftmaxRowsInPlace(scores)
			oi, err := tensor.MatMul(scores, hs.V)
			if err != nil {
				return nil, err
			}
			copy(out.Row(i), oi.Row(0))
		}
		headOuts[hi] = out
	}
	cat, err := tensor.ConcatCols(headOuts...)
	if err != nil {
		return nil, err
	}
	proj, err := tensor.MatMul(cat, m.WO)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(proj, m.BO); err != nil {
		return nil, err
	}
	return proj, nil
}
