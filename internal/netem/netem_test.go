package netem

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestMbps(t *testing.T) {
	if Mbps(8) != 1e6 {
		t.Fatalf("Mbps(8) = %v, want 1e6 B/s", Mbps(8))
	}
	if Mbps(500) != 62.5e6 {
		t.Fatalf("Mbps(500) = %v", Mbps(500))
	}
}

func TestNICSerialization(t *testing.T) {
	n := NewNIC(1000) // 1000 B/s
	now := time.Now()
	end := n.Reserve(now, 500)
	if d := end.Sub(now); d < 499*time.Millisecond || d > 501*time.Millisecond {
		t.Fatalf("500 B at 1000 B/s took %v, want ~500ms", d)
	}
}

func TestNICQueuesReservations(t *testing.T) {
	n := NewNIC(1000)
	now := time.Now()
	end1 := n.Reserve(now, 100)
	end2 := n.Reserve(now, 100)
	if !end2.After(end1) {
		t.Fatal("second reservation did not queue behind first")
	}
	if d := end2.Sub(now); d < 199*time.Millisecond {
		t.Fatalf("queued reservation completed at %v, want ≥200ms", d)
	}
}

func TestNICUnlimited(t *testing.T) {
	n := NewNIC(0)
	now := time.Now()
	if end := n.Reserve(now, 1<<30); end.After(now) {
		t.Fatal("unlimited NIC delayed a transfer")
	}
}

func TestNICSetRate(t *testing.T) {
	n := NewNIC(100)
	if n.Rate() != 100 {
		t.Fatalf("Rate = %v", n.Rate())
	}
	n.SetRate(200)
	if n.Rate() != 200 {
		t.Fatalf("Rate after SetRate = %v", n.Rate())
	}
}

func TestTransferBottleneck(t *testing.T) {
	fast := NewNIC(1e6)
	slow := NewNIC(1000)
	now := time.Now()
	end := Transfer(now, fast, slow, 1000)
	if d := end.Sub(now); d < 999*time.Millisecond || d > 1001*time.Millisecond {
		t.Fatalf("transfer over 1000 B/s bottleneck took %v, want ~1s", d)
	}
}

func TestTransferSelf(t *testing.T) {
	n := NewNIC(1000)
	now := time.Now()
	end := Transfer(now, n, n, 500)
	if d := end.Sub(now); d < 499*time.Millisecond {
		t.Fatalf("self transfer took %v", d)
	}
}

func TestTransferOppositeDirectionsNoDeadlock(t *testing.T) {
	a, b := NewNIC(1e9), NewNIC(1e9)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); Transfer(time.Now(), a, b, 100) }()
		go func() { defer wg.Done(); Transfer(time.Now(), b, a, 100) }()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock between opposite-direction transfers")
	}
}

func TestTransferSerializesBothEndpoints(t *testing.T) {
	// Two transfers into the same receiver contend for its ingress: the
	// second must finish roughly twice as late.
	recv := NewNIC(1000)
	s1, s2 := NewNIC(0), NewNIC(0)
	now := time.Now()
	end1 := Transfer(now, s1, recv, 100)
	end2 := Transfer(now, s2, recv, 100)
	if end2.Sub(now) < 199*time.Millisecond {
		t.Fatalf("receiver ingress not serialized: %v then %v", end1.Sub(now), end2.Sub(now))
	}
}

func TestSleepUntil(t *testing.T) {
	start := time.Now()
	if err := SleepUntil(context.Background(), start.Add(30*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("SleepUntil returned early")
	}
	// Past deadline: immediate.
	if err := SleepUntil(context.Background(), time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestSleepUntilCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := SleepUntil(ctx, time.Now().Add(10*time.Second))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProfile(t *testing.T) {
	if Unlimited.Rate() != 0 || Unlimited.String() != "unlimited" {
		t.Fatal("Unlimited profile broken")
	}
	if EdgeDefault.BandwidthMbps != 500 {
		t.Fatalf("EdgeDefault = %v", EdgeDefault)
	}
	p := Profile{BandwidthMbps: 200, Latency: time.Millisecond}
	if p.Rate() != Mbps(200) {
		t.Fatalf("Rate = %v", p.Rate())
	}
	if p.String() == "" {
		t.Fatal("String empty")
	}
}
