// Package netem emulates edge-network conditions — limited bandwidth and
// propagation latency — for both the in-memory and the TCP transports.
//
// The model follows the paper's testbed ("we limit the network bandwidth to
// 500 Mbps"): every device has a network interface with a fixed line rate,
// and a transfer of s bytes from A to B serializes over the bottleneck of
// A's egress and B's ingress. Concurrent transfers sharing a NIC queue
// behind each other, which is what makes All-Reduce-heavy schemes slow at
// the edge.
package netem

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mbps converts megabits per second to bytes per second.
func Mbps(mbps float64) float64 { return mbps * 1e6 / 8 }

// NIC is a serializing network interface: at most `rate` bytes per second
// pass through it, and concurrent reservations queue. A zero rate means
// unlimited. NIC is safe for concurrent use.
type NIC struct {
	id        uint64 // creation order, used for deadlock-free pair locking
	mu        sync.Mutex
	rate      float64 // bytes per second; 0 = unlimited
	busyUntil time.Time
}

var nicIDs atomic.Uint64

// NewNIC returns an interface limited to rate bytes per second (0 =
// unlimited).
func NewNIC(rate float64) *NIC {
	return &NIC{id: nicIDs.Add(1), rate: rate}
}

// Rate returns the configured rate in bytes per second.
func (n *NIC) Rate() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rate
}

// SetRate changes the line rate (0 = unlimited). In-flight reservations are
// unaffected.
func (n *NIC) SetRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rate = rate
}

// serialization returns how long size bytes occupy the interface.
func (n *NIC) serialization(size int) time.Duration {
	if n.rate <= 0 {
		return 0
	}
	return time.Duration(float64(size) / n.rate * float64(time.Second))
}

// Reserve books the interface for size bytes starting no earlier than now,
// returning the completion time. Reservations are strictly serialized.
func (n *NIC) Reserve(now time.Time, size int) time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	start := now
	if n.busyUntil.After(start) {
		start = n.busyUntil
	}
	end := start.Add(n.serialization(size))
	n.busyUntil = end
	return end
}

// Transfer models moving size bytes from the src to the dst interface:
// both are reserved together (the transfer serializes over the slower one)
// and the returned time is when the last byte clears both NICs. Propagation
// latency is added by the caller.
func Transfer(now time.Time, src, dst *NIC, size int) time.Time {
	if src == dst {
		return src.Reserve(now, size)
	}
	// Lock both in creation order to avoid deadlocks between concurrent
	// opposite-direction transfers.
	first, second := src, dst
	if dst.id < src.id {
		first, second = dst, src
	}
	first.mu.Lock()
	second.mu.Lock()
	defer first.mu.Unlock()
	defer second.mu.Unlock()

	start := now
	if src.busyUntil.After(start) {
		start = src.busyUntil
	}
	if dst.busyUntil.After(start) {
		start = dst.busyUntil
	}
	d := src.serialization(size)
	if dd := dst.serialization(size); dd > d {
		d = dd
	}
	end := start.Add(d)
	src.busyUntil = end
	dst.busyUntil = end
	return end
}

// SleepUntil blocks until t (or ctx is done), using wall-clock time. It
// returns ctx.Err() when cancelled.
func SleepUntil(ctx context.Context, t time.Time) error {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Profile bundles the emulated network parameters of a deployment.
type Profile struct {
	// BandwidthMbps is the per-device line rate in megabits per second;
	// 0 disables shaping.
	BandwidthMbps float64
	// Latency is the one-way propagation delay per message.
	Latency time.Duration
}

// Rate returns the profile's line rate in bytes per second.
func (p Profile) Rate() float64 { return Mbps(p.BandwidthMbps) }

// Unlimited is the no-emulation profile.
var Unlimited = Profile{}

// EdgeDefault mirrors the paper's default setting: 500 Mbps links with a
// small LAN-scale propagation delay.
var EdgeDefault = Profile{BandwidthMbps: 500, Latency: 200 * time.Microsecond}

// String implements fmt.Stringer.
func (p Profile) String() string {
	if p.BandwidthMbps <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.0fMbps/%s", p.BandwidthMbps, p.Latency)
}
