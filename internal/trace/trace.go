// Package trace records per-device, per-phase timings during distributed
// inference, splitting each run into compute, communication and boundary
// time. The breakdown experiment uses it to validate the analytic cost
// model's compute:comm split against real execution — the quantity that
// decides every comparison in the paper.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Phase classifies where a span of time went.
type Phase int

// Phases of a distributed inference.
const (
	// PhaseCompute is local tensor math (including emulated pacing).
	PhaseCompute Phase = iota + 1
	// PhaseComm is blocking collective communication.
	PhaseComm
	// PhaseBoundary is terminal input distribution / output collection.
	PhaseBoundary
	// PhaseQueue is time spent waiting for admission — in the gateway's
	// per-class queues or the cluster's admission queue — before any device
	// touched the request.
	PhaseQueue
	// PhaseBatchWait is time a generate sequence spent waiting to join the
	// fused decode batch after submission (continuous batching), so
	// queue-vs-fuse time is attributable per request.
	PhaseBatchWait
	// PhaseRecover is time a generate sequence spent parked between a batch
	// fault and its resumption (re-prefill on the surviving workers), so the
	// cost of riding out a device failure is attributable per request.
	PhaseRecover
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseComm:
		return "comm"
	case PhaseBoundary:
		return "boundary"
	case PhaseQueue:
		return "queue"
	case PhaseBatchWait:
		return "batch_wait"
	case PhaseRecover:
		return "recover"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Recorder accumulates phase durations per device. It is safe for
// concurrent use; the zero value is not valid — use NewRecorder.
type Recorder struct {
	mu     sync.Mutex
	k      int
	totals []map[Phase]time.Duration
}

// NewRecorder returns a recorder for k devices (ranks 0..k-1).
func NewRecorder(k int) (*Recorder, error) {
	if k < 1 {
		return nil, fmt.Errorf("trace: k = %d", k)
	}
	totals := make([]map[Phase]time.Duration, k)
	for i := range totals {
		totals[i] = make(map[Phase]time.Duration, 3)
	}
	return &Recorder{k: k, totals: totals}, nil
}

// Add records d under (rank, phase). Out-of-range ranks are ignored so
// instrumentation can never break an inference.
func (r *Recorder) Add(rank int, phase Phase, d time.Duration) {
	if r == nil || rank < 0 || rank >= r.k || d < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.totals[rank][phase] += d
}

// Reset zeroes all accumulated durations.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.totals {
		r.totals[i] = make(map[Phase]time.Duration, 3)
	}
}

// DeviceBreakdown is one device's accumulated phase times.
type DeviceBreakdown struct {
	Rank     int
	Compute  time.Duration
	Comm     time.Duration
	Boundary time.Duration
}

// Total returns the sum of the phases.
func (d DeviceBreakdown) Total() time.Duration { return d.Compute + d.Comm + d.Boundary }

// CommFraction returns comm/(compute+comm), the balance the paper's
// comparisons hinge on (0 when nothing recorded).
func (d DeviceBreakdown) CommFraction() float64 {
	denom := d.Compute + d.Comm
	if denom <= 0 {
		return 0
	}
	return float64(d.Comm) / float64(denom)
}

// Report is a snapshot of all devices.
type Report struct {
	Devices []DeviceBreakdown
}

// Snapshot returns the current per-device breakdowns.
func (r *Recorder) Snapshot() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{Devices: make([]DeviceBreakdown, r.k)}
	for i, m := range r.totals {
		rep.Devices[i] = DeviceBreakdown{
			Rank:     i,
			Compute:  m[PhaseCompute],
			Comm:     m[PhaseComm],
			Boundary: m[PhaseBoundary],
		}
	}
	return rep
}

// MaxDevice returns the breakdown of the device with the largest total —
// the critical path of a synchronized run. Ties break deterministically
// toward the lowest rank (the devices are interchangeable replicas, so any
// tied device is an equally valid critical path; picking the lowest keeps
// reports stable across runs). When no device recorded any time, ok is
// false and the returned breakdown carries Rank -1, so an empty report can
// never misattribute the critical path to rank 0.
func (rep Report) MaxDevice() (DeviceBreakdown, bool) {
	best, ok := DeviceBreakdown{Rank: -1}, false
	for _, d := range rep.Devices {
		if d.Total() <= 0 {
			continue
		}
		if !ok || d.Total() > best.Total() {
			best, ok = d, true
		}
	}
	return best, ok
}

// Mean returns the average breakdown across devices.
func (rep Report) Mean() DeviceBreakdown {
	var sum DeviceBreakdown
	if len(rep.Devices) == 0 {
		return sum
	}
	for _, d := range rep.Devices {
		sum.Compute += d.Compute
		sum.Comm += d.Comm
		sum.Boundary += d.Boundary
	}
	n := time.Duration(len(rep.Devices))
	return DeviceBreakdown{
		Compute:  sum.Compute / n,
		Comm:     sum.Comm / n,
		Boundary: sum.Boundary / n,
	}
}
