package trace

import (
	"sync"
	"time"
)

// Per-request tracing. A Recorder aggregates phase time across the life of
// a cluster; a RequestTrace records the individual per-device, per-layer
// spans of one request, so an operator can see where a single slow request
// spent its time (which layer, which device, compute or comm) instead of
// only the lifetime aggregate. The serving runtime attaches one to each
// request when Options.TraceRequests is set and surfaces it on
// Result.Trace.

// Span is one timed step of one request on one device.
type Span struct {
	// Rank is the device that did the work; by the cluster's convention the
	// terminal device is rank K.
	Rank int
	// Layer is the transformer layer index, or -1 for boundary work (input
	// distribution, output collection) that belongs to no layer.
	Layer int
	// Phase classifies the work.
	Phase Phase
	// Offset is when the span began, relative to the trace's creation.
	Offset time.Duration
	// Dur is how long the span took.
	Dur time.Duration
}

// RequestTrace collects the spans of one request. All methods are safe for
// concurrent use (worker goroutines append in parallel) and nil-safe, so
// untraced requests cost one branch per span site.
type RequestTrace struct {
	start time.Time

	mu    sync.Mutex
	id    uint64
	spans []Span
}

// NewRequestTrace returns an empty trace anchored at now.
func NewRequestTrace() *RequestTrace {
	return &RequestTrace{start: time.Now()}
}

// SetID stamps the trace with the request's admission id (known only after
// admission).
func (t *RequestTrace) SetID(id uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.id = id
}

// ID returns the request's admission id.
func (t *RequestTrace) ID() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Add records one span that ended now and took d. Layer -1 marks boundary
// work. Negative durations are dropped.
func (t *RequestTrace) Add(rank, layer int, phase Phase, d time.Duration) {
	if t == nil || d < 0 {
		return
	}
	offset := time.Since(t.start) - d
	if offset < 0 {
		offset = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Rank: rank, Layer: layer, Phase: phase, Offset: offset, Dur: d})
}

// AddAt records one span with an explicit offset from the trace's start —
// for work that happened before the trace was created, like the gateway's
// queue wait, where Add's ended-now arithmetic would misplace it. Negative
// offsets clamp to zero (the span simply leads the trace); negative
// durations are dropped.
func (t *RequestTrace) AddAt(rank, layer int, phase Phase, offset, d time.Duration) {
	if t == nil || d < 0 {
		return
	}
	if offset < 0 {
		offset = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Rank: rank, Layer: layer, Phase: phase, Offset: offset, Dur: d})
}

// Spans returns a copy of the recorded spans in recording order (which
// interleaves devices — sort by Offset, Rank or Layer as needed).
func (t *RequestTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// PhaseTotals sums the recorded spans by phase — the request-local
// equivalent of a Recorder breakdown.
func (t *RequestTrace) PhaseTotals() map[Phase]time.Duration {
	totals := make(map[Phase]time.Duration, 3)
	if t == nil {
		return totals
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		totals[s.Phase] += s.Dur
	}
	return totals
}
