package trace

import (
	"sync"
	"testing"
	"time"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestAddAndSnapshot(t *testing.T) {
	r, err := NewRecorder(2)
	if err != nil {
		t.Fatal(err)
	}
	r.Add(0, PhaseCompute, 10*time.Millisecond)
	r.Add(0, PhaseCompute, 5*time.Millisecond)
	r.Add(0, PhaseComm, 3*time.Millisecond)
	r.Add(1, PhaseBoundary, 7*time.Millisecond)
	rep := r.Snapshot()
	if rep.Devices[0].Compute != 15*time.Millisecond {
		t.Fatalf("compute %v", rep.Devices[0].Compute)
	}
	if rep.Devices[0].Comm != 3*time.Millisecond {
		t.Fatalf("comm %v", rep.Devices[0].Comm)
	}
	if rep.Devices[1].Boundary != 7*time.Millisecond {
		t.Fatalf("boundary %v", rep.Devices[1].Boundary)
	}
	if rep.Devices[0].Total() != 18*time.Millisecond {
		t.Fatalf("total %v", rep.Devices[0].Total())
	}
}

func TestAddIgnoresBadInput(t *testing.T) {
	r, _ := NewRecorder(1)
	r.Add(-1, PhaseCompute, time.Second)
	r.Add(5, PhaseCompute, time.Second)
	r.Add(0, PhaseCompute, -time.Second)
	var nilRec *Recorder
	nilRec.Add(0, PhaseCompute, time.Second) // must not panic
	if r.Snapshot().Devices[0].Compute != 0 {
		t.Fatal("bad input recorded")
	}
}

func TestReset(t *testing.T) {
	r, _ := NewRecorder(1)
	r.Add(0, PhaseCompute, time.Second)
	r.Reset()
	if r.Snapshot().Devices[0].Compute != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCommFraction(t *testing.T) {
	d := DeviceBreakdown{Compute: 3 * time.Second, Comm: time.Second}
	if got := d.CommFraction(); got != 0.25 {
		t.Fatalf("CommFraction = %v", got)
	}
	if (DeviceBreakdown{}).CommFraction() != 0 {
		t.Fatal("empty CommFraction")
	}
}

func TestMaxDeviceAndMean(t *testing.T) {
	rep := Report{Devices: []DeviceBreakdown{
		{Rank: 0, Compute: time.Second},
		{Rank: 1, Compute: 3 * time.Second, Comm: time.Second},
	}}
	if got, ok := rep.MaxDevice(); !ok || got.Rank != 1 {
		t.Fatalf("MaxDevice rank %d ok %v", got.Rank, ok)
	}
	mean := rep.Mean()
	if mean.Compute != 2*time.Second || mean.Comm != 500*time.Millisecond {
		t.Fatalf("Mean %+v", mean)
	}
	if (Report{}).Mean().Compute != 0 {
		t.Fatal("empty Mean")
	}
}

// TestMaxDeviceTiesAndEmpty pins the MaxDevice bugfix: an all-zero report
// used to return the zero-value DeviceBreakdown{Rank: 0}, misreporting
// rank 0 as the critical path; ties were decided by slice order accident.
func TestMaxDeviceTiesAndEmpty(t *testing.T) {
	s := time.Second
	cases := []struct {
		name     string
		devices  []DeviceBreakdown
		wantRank int
		wantOK   bool
	}{
		{"empty report", nil, -1, false},
		{"all zero totals", []DeviceBreakdown{{Rank: 0}, {Rank: 1}, {Rank: 2}}, -1, false},
		{"single device", []DeviceBreakdown{{Rank: 0, Compute: s}}, 0, true},
		{"clear winner", []DeviceBreakdown{{Rank: 0, Compute: s}, {Rank: 1, Comm: 2 * s}}, 1, true},
		{"two-way tie picks lowest rank",
			[]DeviceBreakdown{{Rank: 0, Compute: 2 * s}, {Rank: 1, Comm: 2 * s}}, 0, true},
		{"tie among later ranks picks lowest of them",
			[]DeviceBreakdown{{Rank: 0, Compute: s}, {Rank: 1, Comm: 3 * s}, {Rank: 2, Boundary: 3 * s}}, 1, true},
		{"zero-total rank 0 never wins",
			[]DeviceBreakdown{{Rank: 0}, {Rank: 1, Compute: s}}, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := Report{Devices: tc.devices}.MaxDevice()
			if ok != tc.wantOK || got.Rank != tc.wantRank {
				t.Fatalf("MaxDevice = rank %d ok %v, want rank %d ok %v",
					got.Rank, ok, tc.wantRank, tc.wantOK)
			}
		})
	}
}

func TestRequestTraceSpans(t *testing.T) {
	tr := NewRequestTrace()
	tr.SetID(42)
	tr.Add(0, 0, PhaseCompute, 2*time.Millisecond)
	tr.Add(1, 0, PhaseCompute, 3*time.Millisecond)
	tr.Add(0, 0, PhaseComm, time.Millisecond)
	tr.Add(2, -1, PhaseBoundary, 4*time.Millisecond)
	tr.Add(0, 1, PhaseCompute, -time.Millisecond) // dropped

	if tr.ID() != 42 {
		t.Fatalf("ID = %d", tr.ID())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans, want 4", len(spans))
	}
	if spans[3].Layer != -1 || spans[3].Phase != PhaseBoundary || spans[3].Rank != 2 {
		t.Fatalf("boundary span %+v", spans[3])
	}
	totals := tr.PhaseTotals()
	if totals[PhaseCompute] != 5*time.Millisecond || totals[PhaseComm] != time.Millisecond ||
		totals[PhaseBoundary] != 4*time.Millisecond {
		t.Fatalf("totals %v", totals)
	}

	// Nil traces are recordable no-ops, so untraced requests need no call-
	// site guards.
	var nt *RequestTrace
	nt.Add(0, 0, PhaseCompute, time.Second)
	nt.SetID(1)
	if nt.Spans() != nil || nt.ID() != 0 || len(nt.PhaseTotals()) != 0 {
		t.Fatal("nil trace must read empty")
	}
}

func TestRequestTraceConcurrentAdd(t *testing.T) {
	tr := NewRequestTrace()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for l := 0; l < 25; l++ {
				tr.Add(rank, l, PhaseCompute, time.Microsecond)
			}
		}(r)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 100 {
		t.Fatalf("%d spans, want 100", got)
	}
}

// TestRequestTraceConcurrentReadersAndWriters exercises every RequestTrace
// method racing against the others — the flight recorder snapshots traces
// (Spans) while worker goroutines are still appending to them. Run under
// -race this is the memory-safety proof for that pattern.
func TestRequestTraceConcurrentReadersAndWriters(t *testing.T) {
	tr := NewRequestTrace()
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for l := 0; l < 50; l++ {
				tr.Add(rank, l, PhaseCompute, time.Microsecond)
				tr.AddAt(rank, l, PhaseComm, time.Duration(l)*time.Microsecond, time.Microsecond)
			}
		}(r)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				spans := tr.Spans()
				for _, sp := range spans {
					if sp.Dur != time.Microsecond {
						t.Errorf("snapshot observed torn span: %+v", sp)
						return
					}
				}
				tr.SetID(uint64(i*100 + j))
				_ = tr.ID()
				_ = tr.PhaseTotals()
			}
		}(i)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 300 {
		t.Fatalf("%d spans, want 300", got)
	}
	// Snapshots must be isolated copies: mutating one does not corrupt the
	// trace other readers see.
	snap := tr.Spans()
	snap[0].Dur = time.Hour
	if tr.Spans()[0].Dur == time.Hour {
		t.Fatal("Spans returned a live reference, not a copy")
	}

	// Nil traces swallow every call (the tracing-disabled path).
	var nilTr *RequestTrace
	nilTr.Add(0, 0, PhaseCompute, time.Microsecond)
	nilTr.AddAt(0, 0, PhaseComm, 0, time.Microsecond)
	nilTr.SetID(7)
	if nilTr.Spans() != nil || nilTr.ID() != 0 {
		t.Fatal("nil RequestTrace not inert")
	}
}

func TestConcurrentAdd(t *testing.T) {
	r, _ := NewRecorder(4)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Add(i%4, PhaseComm, time.Millisecond)
		}(i)
	}
	wg.Wait()
	var total time.Duration
	for _, d := range r.Snapshot().Devices {
		total += d.Comm
	}
	if total != 100*time.Millisecond {
		t.Fatalf("concurrent total %v", total)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseCompute.String() != "compute" || PhaseComm.String() != "comm" || PhaseBoundary.String() != "boundary" {
		t.Fatal("phase names")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Fatal("unknown phase")
	}
}
