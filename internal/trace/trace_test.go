package trace

import (
	"sync"
	"testing"
	"time"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestAddAndSnapshot(t *testing.T) {
	r, err := NewRecorder(2)
	if err != nil {
		t.Fatal(err)
	}
	r.Add(0, PhaseCompute, 10*time.Millisecond)
	r.Add(0, PhaseCompute, 5*time.Millisecond)
	r.Add(0, PhaseComm, 3*time.Millisecond)
	r.Add(1, PhaseBoundary, 7*time.Millisecond)
	rep := r.Snapshot()
	if rep.Devices[0].Compute != 15*time.Millisecond {
		t.Fatalf("compute %v", rep.Devices[0].Compute)
	}
	if rep.Devices[0].Comm != 3*time.Millisecond {
		t.Fatalf("comm %v", rep.Devices[0].Comm)
	}
	if rep.Devices[1].Boundary != 7*time.Millisecond {
		t.Fatalf("boundary %v", rep.Devices[1].Boundary)
	}
	if rep.Devices[0].Total() != 18*time.Millisecond {
		t.Fatalf("total %v", rep.Devices[0].Total())
	}
}

func TestAddIgnoresBadInput(t *testing.T) {
	r, _ := NewRecorder(1)
	r.Add(-1, PhaseCompute, time.Second)
	r.Add(5, PhaseCompute, time.Second)
	r.Add(0, PhaseCompute, -time.Second)
	var nilRec *Recorder
	nilRec.Add(0, PhaseCompute, time.Second) // must not panic
	if r.Snapshot().Devices[0].Compute != 0 {
		t.Fatal("bad input recorded")
	}
}

func TestReset(t *testing.T) {
	r, _ := NewRecorder(1)
	r.Add(0, PhaseCompute, time.Second)
	r.Reset()
	if r.Snapshot().Devices[0].Compute != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCommFraction(t *testing.T) {
	d := DeviceBreakdown{Compute: 3 * time.Second, Comm: time.Second}
	if got := d.CommFraction(); got != 0.25 {
		t.Fatalf("CommFraction = %v", got)
	}
	if (DeviceBreakdown{}).CommFraction() != 0 {
		t.Fatal("empty CommFraction")
	}
}

func TestMaxDeviceAndMean(t *testing.T) {
	rep := Report{Devices: []DeviceBreakdown{
		{Rank: 0, Compute: time.Second},
		{Rank: 1, Compute: 3 * time.Second, Comm: time.Second},
	}}
	if got := rep.MaxDevice(); got.Rank != 1 {
		t.Fatalf("MaxDevice rank %d", got.Rank)
	}
	mean := rep.Mean()
	if mean.Compute != 2*time.Second || mean.Comm != 500*time.Millisecond {
		t.Fatalf("Mean %+v", mean)
	}
	if (Report{}).Mean().Compute != 0 {
		t.Fatal("empty Mean")
	}
}

func TestConcurrentAdd(t *testing.T) {
	r, _ := NewRecorder(4)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Add(i%4, PhaseComm, time.Millisecond)
		}(i)
	}
	wg.Wait()
	var total time.Duration
	for _, d := range r.Snapshot().Devices {
		total += d.Comm
	}
	if total != 100*time.Millisecond {
		t.Fatalf("concurrent total %v", total)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseCompute.String() != "compute" || PhaseComm.String() != "comm" || PhaseBoundary.String() != "boundary" {
		t.Fatal("phase names")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Fatal("unknown phase")
	}
}
