// Package obs is the continuous profiling and diagnostics layer: a rolling
// per-rank profile store (the sensing input for adaptive re-partitioning),
// a fused-round straggler/skew detector, an always-on flight recorder of
// recent traces and cluster events, and a Chrome trace-event exporter so
// per-rank timelines render directly in Perfetto / chrome://tracing.
//
// The package is deliberately dependency-free and cluster-agnostic: the
// cluster feeds it raw observations (phase durations, comm bytes, fused
// round times) and reads back snapshots. All types are safe for concurrent
// use and nil-receiver-safe, so call sites need no guards.
package obs

import (
	"sync"
	"time"

	"voltage/internal/trace"
)

// Defaults for StoreOptions zero values.
const (
	// DefaultAlpha is the EWMA weight given to each new sample.
	DefaultAlpha = 0.25
	// DefaultSkewThreshold is the per-round max/mean compute-time ratio a
	// rank must exceed to count toward straggler detection.
	DefaultSkewThreshold = 1.5
	// DefaultStragglerRounds is how many consecutive qualifying (or
	// recovered) rounds flip the straggler flag on (or off).
	DefaultStragglerRounds = 4

	// maxPartialRounds bounds the number of in-flight (not yet fully
	// reported) fused rounds the store tracks; older partials are dropped.
	maxPartialRounds = 64
)

// StoreOptions configures a profile Store.
type StoreOptions struct {
	// K is the number of worker ranks; rank K is the terminal.
	K int
	// Alpha is the EWMA weight for new samples (0 = DefaultAlpha).
	Alpha float64
	// SkewThreshold and StragglerRounds tune the straggler detector
	// (0 = DefaultSkewThreshold / DefaultStragglerRounds).
	SkewThreshold   float64
	StragglerRounds int
	// OnRound fires after every completed fused round with that round's
	// compute-time skew and the running EWMA. OnStraggler fires when a
	// rank's persistent-straggler flag flips. Both are invoked outside the
	// store's lock but must not block; they run on decode hot paths.
	OnRound     func(round uint64, skew, ewma float64)
	OnStraggler func(rank int, flagged bool)
}

// phaseEst is one rank×phase rolling estimate.
type phaseEst struct {
	ewma    float64 // seconds
	total   time.Duration
	samples uint64
}

func (e *phaseEst) observe(d time.Duration, alpha float64) {
	s := d.Seconds()
	if e.samples == 0 {
		e.ewma = s
	} else {
		e.ewma += alpha * (s - e.ewma)
	}
	e.total += d
	e.samples++
}

// partialRound collects per-rank fused-step times for one round until all
// live ranks have reported.
type partialRound struct {
	round uint64
	want  int
	times map[int]time.Duration
}

// Store is the rolling per-rank profile: per-phase EWMA timings, scoped
// comm bytes, fused-step estimates, and the straggler/skew detector. It is
// the snapshot source the re-partitioning controller (ROADMAP item 2)
// will consume.
type Store struct {
	opts StoreOptions

	mu     sync.Mutex
	phases [][]phaseEst // [rank][phase-1]
	steps  []phaseEst   // per-rank fused decode step
	sent   []int64      // comm bytes per rank
	recv   []int64

	rounds   uint64  // completed fused rounds
	lastSkew float64 // last round's max/mean
	skewEWMA float64
	partial  []partialRound // in-flight rounds, oldest first

	above     []int // consecutive rounds at/over threshold, per rank
	below     []int // consecutive rounds under threshold while flagged
	straggler []bool
}

// NewStore builds a profile store for ranks 0..K (K = terminal).
func NewStore(opts StoreOptions) *Store {
	if opts.Alpha <= 0 || opts.Alpha > 1 {
		opts.Alpha = DefaultAlpha
	}
	if opts.SkewThreshold <= 1 {
		opts.SkewThreshold = DefaultSkewThreshold
	}
	if opts.StragglerRounds <= 0 {
		opts.StragglerRounds = DefaultStragglerRounds
	}
	n := opts.K + 1 // workers plus terminal
	s := &Store{
		opts:      opts,
		phases:    make([][]phaseEst, n),
		steps:     make([]phaseEst, n),
		sent:      make([]int64, n),
		recv:      make([]int64, n),
		above:     make([]int, n),
		below:     make([]int, n),
		straggler: make([]bool, n),
	}
	for r := range s.phases {
		s.phases[r] = make([]phaseEst, int(trace.PhaseRecover))
	}
	return s
}

// RecordPhase folds one phase duration into rank's rolling estimates.
func (s *Store) RecordPhase(rank int, phase trace.Phase, d time.Duration) {
	if s == nil || rank < 0 || rank >= len(s.phases) {
		return
	}
	i := int(phase) - 1
	if i < 0 || i >= int(trace.PhaseRecover) {
		return
	}
	s.mu.Lock()
	s.phases[rank][i].observe(d, s.opts.Alpha)
	s.mu.Unlock()
}

// RecordComm adds scoped comm bytes for rank.
func (s *Store) RecordComm(rank int, sent, recv int64) {
	if s == nil || rank < 0 || rank >= len(s.sent) {
		return
	}
	s.mu.Lock()
	s.sent[rank] += sent
	s.recv[rank] += recv
	s.mu.Unlock()
}

// RecordRound reports rank's compute time for fused round `round`, which
// `live` ranks participate in. When the last participant reports, the
// round finalizes: skew (max/mean) is computed, per-rank step estimates
// update, and the straggler detector advances. Rounds interleave freely —
// a bounded set of partial rounds is kept and stale ones are dropped.
func (s *Store) RecordRound(round uint64, rank, live int, d time.Duration) {
	if s == nil || rank < 0 || rank >= len(s.steps) || live <= 0 {
		return
	}
	var fire []func()
	s.mu.Lock()
	s.steps[rank].observe(d, s.opts.Alpha)
	pi := -1
	for i := range s.partial {
		if s.partial[i].round == round {
			pi = i
			break
		}
	}
	if pi < 0 {
		if len(s.partial) >= maxPartialRounds {
			s.partial = s.partial[1:]
		}
		s.partial = append(s.partial, partialRound{round: round, want: live, times: make(map[int]time.Duration, live)})
		pi = len(s.partial) - 1
	}
	p := &s.partial[pi]
	if live < p.want {
		p.want = live // a rank died mid-round: settle for the smaller live set
	}
	p.times[rank] = d
	if len(p.times) >= p.want {
		fire = s.finalizeLocked(p)
		s.partial = append(s.partial[:pi], s.partial[pi+1:]...)
	}
	s.mu.Unlock()
	for _, f := range fire {
		f()
	}
}

// finalizeLocked closes one fully-reported round and returns the callbacks
// to fire after the lock is released.
func (s *Store) finalizeLocked(p *partialRound) []func() {
	var max, sum time.Duration
	for _, d := range p.times {
		sum += d
		if d > max {
			max = d
		}
	}
	mean := float64(sum) / float64(len(p.times))
	if mean <= 0 {
		return nil
	}
	skew := float64(max) / mean
	s.rounds++
	s.lastSkew = skew
	if s.rounds == 1 {
		s.skewEWMA = skew
	} else {
		s.skewEWMA += s.opts.Alpha * (skew - s.skewEWMA)
	}

	var fire []func()
	round, ewma := p.round, s.skewEWMA
	if f := s.opts.OnRound; f != nil {
		fire = append(fire, func() { f(round, skew, ewma) })
	}
	for rank, d := range p.times {
		ratio := float64(d) / mean
		if ratio >= s.opts.SkewThreshold {
			s.above[rank]++
			s.below[rank] = 0
			if !s.straggler[rank] && s.above[rank] >= s.opts.StragglerRounds {
				s.straggler[rank] = true
				if f := s.opts.OnStraggler; f != nil {
					r := rank
					fire = append(fire, func() { f(r, true) })
				}
			}
		} else {
			s.above[rank] = 0
			if s.straggler[rank] {
				s.below[rank]++
				if s.below[rank] >= s.opts.StragglerRounds {
					s.straggler[rank] = false
					s.below[rank] = 0
					if f := s.opts.OnStraggler; f != nil {
						r := rank
						fire = append(fire, func() { f(r, false) })
					}
				}
			}
		}
	}
	return fire
}

// PhaseStats is one rank×phase rolling estimate in a Profile snapshot.
type PhaseStats struct {
	// EWMASeconds tracks recent behavior; MeanSeconds is the lifetime mean.
	EWMASeconds  float64 `json:"ewma_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
	Samples      uint64  `json:"samples"`
}

// RankProfile is one device's live profile.
type RankProfile struct {
	Rank     int  `json:"rank"`
	Terminal bool `json:"terminal,omitempty"`
	// Phases maps phase name ("compute", "comm", ...) to its estimates;
	// phases never observed are omitted.
	Phases map[string]PhaseStats `json:"phases,omitempty"`
	// StepEWMASeconds is the rolling fused-decode-step time — the primary
	// skew signal for re-partitioning.
	StepEWMASeconds float64 `json:"step_ewma_seconds,omitempty"`
	StepSamples     uint64  `json:"step_samples,omitempty"`
	BytesSent       int64   `json:"bytes_sent,omitempty"`
	BytesRecv       int64   `json:"bytes_recv,omitempty"`
	// Straggler is the detector's current persistent-straggler flag.
	Straggler bool `json:"straggler,omitempty"`
}

// Profile is a point-in-time snapshot of the store.
type Profile struct {
	// K is the worker count; Ranks holds K+1 entries (terminal last).
	K int `json:"k"`
	// Rounds counts completed fused decode rounds.
	Rounds uint64 `json:"rounds"`
	// Skew is the last round's max/mean compute-time ratio across live
	// ranks; SkewEWMA is its rolling average.
	Skew     float64       `json:"skew,omitempty"`
	SkewEWMA float64       `json:"skew_ewma,omitempty"`
	Ranks    []RankProfile `json:"ranks"`
}

// StepSkew is the converged skew estimate: max/mean of the per-rank fused
// step EWMAs over worker ranks with samples. Smoother than the per-round
// Skew and the natural input for a re-partitioning decision.
func (p Profile) StepSkew() float64 {
	var max, sum float64
	n := 0
	for _, r := range p.Ranks {
		if r.Terminal || r.StepSamples == 0 {
			continue
		}
		sum += r.StepEWMASeconds
		if r.StepEWMASeconds > max {
			max = r.StepEWMASeconds
		}
		n++
	}
	if n == 0 || sum <= 0 {
		return 0
	}
	return max / (sum / float64(n))
}

// Profile returns a consistent snapshot of all rolling estimates.
func (s *Store) Profile() Profile {
	if s == nil {
		return Profile{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := Profile{
		K:        s.opts.K,
		Rounds:   s.rounds,
		Skew:     s.lastSkew,
		SkewEWMA: s.skewEWMA,
		Ranks:    make([]RankProfile, len(s.phases)),
	}
	for r := range s.phases {
		rp := RankProfile{
			Rank:            r,
			Terminal:        r == s.opts.K,
			StepEWMASeconds: s.steps[r].ewma,
			StepSamples:     s.steps[r].samples,
			BytesSent:       s.sent[r],
			BytesRecv:       s.recv[r],
			Straggler:       s.straggler[r],
		}
		for i := range s.phases[r] {
			e := &s.phases[r][i]
			if e.samples == 0 {
				continue
			}
			if rp.Phases == nil {
				rp.Phases = make(map[string]PhaseStats)
			}
			rp.Phases[trace.Phase(i+1).String()] = PhaseStats{
				EWMASeconds:  e.ewma,
				MeanSeconds:  e.total.Seconds() / float64(e.samples),
				TotalSeconds: e.total.Seconds(),
				Samples:      e.samples,
			}
		}
		p.Ranks[r] = rp
	}
	return p
}
