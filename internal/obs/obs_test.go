package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"voltage/internal/trace"
)

func TestStorePhaseEstimates(t *testing.T) {
	s := NewStore(StoreOptions{K: 2})
	for i := 0; i < 20; i++ {
		s.RecordPhase(0, trace.PhaseCompute, 2*time.Millisecond)
		s.RecordPhase(1, trace.PhaseCompute, 8*time.Millisecond)
		s.RecordPhase(2, trace.PhaseBoundary, time.Millisecond)
	}
	s.RecordComm(0, 1000, 500)
	s.RecordComm(0, 24, 16)

	p := s.Profile()
	if p.K != 2 || len(p.Ranks) != 3 {
		t.Fatalf("K=%d ranks=%d, want 2/3", p.K, len(p.Ranks))
	}
	c0 := p.Ranks[0].Phases["compute"]
	c1 := p.Ranks[1].Phases["compute"]
	if c0.Samples != 20 || c1.Samples != 20 {
		t.Fatalf("samples %d/%d, want 20/20", c0.Samples, c1.Samples)
	}
	if got, want := c0.EWMASeconds, 0.002; got < want*0.99 || got > want*1.01 {
		t.Errorf("rank0 compute EWMA %g, want ~%g", got, want)
	}
	if c1.EWMASeconds < 3.9*c0.EWMASeconds {
		t.Errorf("rank1 EWMA %g not ~4x rank0 %g", c1.EWMASeconds, c0.EWMASeconds)
	}
	if !p.Ranks[2].Terminal {
		t.Errorf("rank 2 should be terminal")
	}
	if p.Ranks[0].BytesSent != 1024 || p.Ranks[0].BytesRecv != 516 {
		t.Errorf("comm bytes %d/%d, want 1024/516", p.Ranks[0].BytesSent, p.Ranks[0].BytesRecv)
	}
	// Ignored inputs must not panic or corrupt state.
	s.RecordPhase(-1, trace.PhaseCompute, time.Millisecond)
	s.RecordPhase(9, trace.PhaseCompute, time.Millisecond)
	s.RecordPhase(0, trace.Phase(99), time.Millisecond)
	s.RecordComm(99, 1, 1)
	var nilStore *Store
	nilStore.RecordPhase(0, trace.PhaseCompute, time.Millisecond)
	_ = nilStore.Profile()
}

func TestRecordRoundSkewAndStraggler(t *testing.T) {
	var mu sync.Mutex
	var flips []string
	s := NewStore(StoreOptions{
		K: 3, SkewThreshold: 1.5, StragglerRounds: 3,
		OnStraggler: func(rank int, flagged bool) {
			mu.Lock()
			flips = append(flips, fmt.Sprintf("%d:%v", rank, flagged))
			mu.Unlock()
		},
	})
	// Rank 2 runs 4x slower: times [1,1,4] ms → mean 2 ms, skew 2.0.
	round := uint64(0)
	slowRound := func() {
		round++
		s.RecordRound(round, 0, 3, time.Millisecond)
		s.RecordRound(round, 1, 3, time.Millisecond)
		s.RecordRound(round, 2, 3, 4*time.Millisecond)
	}
	evenRound := func() {
		round++
		for r := 0; r < 3; r++ {
			s.RecordRound(round, r, 3, time.Millisecond)
		}
	}
	slowRound()
	slowRound()
	if p := s.Profile(); p.Rounds != 2 || p.Skew < 1.99 || p.Skew > 2.01 {
		t.Fatalf("rounds=%d skew=%g, want 2 rounds skew ~2.0", p.Rounds, p.Skew)
	}
	if s.Profile().Ranks[2].Straggler {
		t.Fatalf("straggler flagged after 2 rounds, want >= 3")
	}
	slowRound()
	p := s.Profile()
	if !p.Ranks[2].Straggler {
		t.Fatalf("rank 2 not flagged after 3 slow rounds: %+v", p.Ranks[2])
	}
	if p.Ranks[0].Straggler || p.Ranks[1].Straggler {
		t.Fatalf("fast ranks flagged")
	}
	if ss := p.StepSkew(); ss < 1.9 || ss > 2.1 {
		t.Errorf("StepSkew %g, want ~2.0", ss)
	}
	// Recovery: the flag clears only after StragglerRounds clean rounds.
	evenRound()
	evenRound()
	if !s.Profile().Ranks[2].Straggler {
		t.Fatalf("flag cleared after 2 clean rounds, want hysteresis of 3")
	}
	evenRound()
	if s.Profile().Ranks[2].Straggler {
		t.Fatalf("flag not cleared after 3 clean rounds")
	}
	mu.Lock()
	defer mu.Unlock()
	if want := []string{"2:true", "2:false"}; fmt.Sprint(flips) != fmt.Sprint(want) {
		t.Errorf("straggler flips %v, want %v", flips, want)
	}
}

func TestRecordRoundPartialEviction(t *testing.T) {
	s := NewStore(StoreOptions{K: 2})
	// Open far more partial rounds than the store retains; none finalize.
	for r := uint64(1); r <= 3*maxPartialRounds; r++ {
		s.RecordRound(r, 0, 3, time.Millisecond)
	}
	if p := s.Profile(); p.Rounds != 0 {
		t.Fatalf("rounds=%d, want 0 (no round fully reported)", p.Rounds)
	}
	// A fresh round still finalizes normally after the churn.
	id := uint64(10_000)
	s.RecordRound(id, 0, 3, time.Millisecond)
	s.RecordRound(id, 1, 3, time.Millisecond)
	s.RecordRound(id, 2, 3, time.Millisecond)
	if p := s.Profile(); p.Rounds != 1 {
		t.Fatalf("rounds=%d after complete round, want 1", p.Rounds)
	}
}

// TestRecordRoundShrinkingLiveSet: a rank dying mid-round lowers the live
// count; the round must finalize with the smaller set instead of waiting
// forever for a report that will never come.
func TestRecordRoundShrinkingLiveSet(t *testing.T) {
	s := NewStore(StoreOptions{K: 2})
	s.RecordRound(7, 0, 3, time.Millisecond)
	s.RecordRound(7, 1, 2, time.Millisecond) // rank 2 died; live is now 2
	if p := s.Profile(); p.Rounds != 1 {
		t.Fatalf("rounds=%d, want 1 (round should close at live=2)", p.Rounds)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(8, 4)
	const writers, each = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.Eventf("test", w, "writer %d event %d", w, i)
				f.RecordTrace(TraceRecord{ID: uint64(w*each + i), Kind: "t"})
				f.Dump() // concurrent reads while writing
			}
		}(w)
	}
	wg.Wait()
	d := f.Dump()
	if len(d.Events) != 8 {
		t.Fatalf("retained %d events, want ring cap 8", len(d.Events))
	}
	if d.EventsDropped != writers*each-8 {
		t.Errorf("events dropped %d, want %d", d.EventsDropped, writers*each-8)
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Seq != d.Events[i-1].Seq+1 {
			t.Fatalf("event seqs not contiguous ascending: %d after %d",
				d.Events[i].Seq, d.Events[i-1].Seq)
		}
	}
	if d.Events[len(d.Events)-1].Seq != writers*each {
		t.Errorf("newest seq %d, want %d", d.Events[len(d.Events)-1].Seq, writers*each)
	}
	if len(d.Traces) != 4 || d.TracesDropped != writers*each-4 {
		t.Errorf("traces %d dropped %d, want 4 / %d", len(d.Traces), d.TracesDropped, writers*each-4)
	}

	var nilF *FlightRecorder
	nilF.Eventf("x", -1, "ignored")
	nilF.RecordTrace(TraceRecord{})
	if d := nilF.Dump(); len(d.Events) != 0 {
		t.Errorf("nil recorder dump has events")
	}
	if nilF.ShouldDump(time.Second) {
		t.Errorf("nil recorder wants dump")
	}
}

func TestShouldDumpCooldown(t *testing.T) {
	f := NewFlightRecorder(4, 4)
	if !f.ShouldDump(time.Hour) {
		t.Fatalf("first ShouldDump refused")
	}
	if f.ShouldDump(time.Hour) {
		t.Fatalf("second ShouldDump inside cooldown allowed")
	}
	if !f.ShouldDump(0) {
		t.Fatalf("zero cooldown refused")
	}
}

func TestChromeTrace(t *testing.T) {
	start := time.Unix(1700000000, 0)
	recs := []TraceRecord{
		{ID: 1, Kind: "generate", Start: start, Latency: 10 * time.Millisecond, Spans: []trace.Span{
			{Rank: 0, Layer: 0, Phase: trace.PhaseCompute, Offset: 0, Dur: 2 * time.Millisecond},
			{Rank: 1, Layer: 0, Phase: trace.PhaseCompute, Offset: 0, Dur: 3 * time.Millisecond},
			{Rank: 2, Layer: -1, Phase: trace.PhaseBoundary, Offset: 3 * time.Millisecond, Dur: time.Millisecond},
		}},
		{ID: 2, Kind: "classify", Start: start.Add(5 * time.Millisecond), Err: "boom", Spans: []trace.Span{
			{Rank: 0, Layer: 1, Phase: trace.PhaseComm, Offset: time.Millisecond, Dur: time.Millisecond},
		}},
		{ID: 3, Kind: "spanless", Start: start}, // skipped
	}
	blob := ChromeTrace(recs, 2)
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  uint64         `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, blob)
	}
	var xEvents, metas int
	tids := map[int]bool{}
	threadNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			tids[ev.TID] = true
			if ev.PID == 3 {
				t.Errorf("spanless record exported")
			}
		case "M":
			metas++
			if ev.Name == "thread_name" {
				threadNames[ev.Args["name"].(string)] = true
			}
		}
	}
	if xEvents != 4 {
		t.Errorf("%d X events, want 4", xEvents)
	}
	if !tids[0] || !tids[1] || !tids[2] {
		t.Errorf("tids %v, want ranks 0..2", tids)
	}
	if !threadNames["terminal"] || !threadNames["rank 0"] {
		t.Errorf("thread names %v, want terminal + rank 0", threadNames)
	}
	// Relative timing preserved: req 2's span starts 5ms+1ms after t0.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.PID == 2 {
			if ev.TS != 6000 {
				t.Errorf("req 2 span ts %v µs, want 6000", ev.TS)
			}
		}
	}
	if ChromeTrace(nil, 0) == nil {
		t.Errorf("empty export should still be a JSON doc")
	}
}
