package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry ts+dur in microseconds; "M" metadata events
// name processes and threads. Perfetto and chrome://tracing read it as-is.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  uint64         `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the format.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders request traces as a Chrome trace-event JSON
// document: one "process" per request, one "thread" per device rank
// (terminalRank shown as "terminal"), spans as "X" complete events on a
// shared time axis. Records without spans (tracing disabled or pure
// queue-time requests) are skipped.
func ChromeTrace(recs []TraceRecord, terminalRank int) []byte {
	var t0 int64 // earliest span start, unix µs
	for _, rec := range recs {
		if len(rec.Spans) == 0 {
			continue
		}
		if us := rec.Start.UnixMicro(); t0 == 0 || us < t0 {
			t0 = us
		}
	}
	events := make([]chromeEvent, 0, 64)
	for _, rec := range recs {
		if len(rec.Spans) == 0 {
			continue
		}
		procName := fmt.Sprintf("req %d (%s)", rec.ID, rec.Kind)
		if rec.Err != "" {
			procName += " FAILED"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: rec.ID,
			Args: map[string]any{"name": procName},
		})
		tids := map[int]bool{}
		base := float64(rec.Start.UnixMicro() - t0)
		for _, sp := range rec.Spans {
			if !tids[sp.Rank] {
				tids[sp.Rank] = true
				tname := fmt.Sprintf("rank %d", sp.Rank)
				if sp.Rank == terminalRank {
					tname = "terminal"
				} else if sp.Rank < 0 {
					tname = "gateway"
				}
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", PID: rec.ID, TID: sp.Rank,
					Args: map[string]any{"name": tname},
				})
			}
			name := sp.Phase.String()
			args := map[string]any{"phase": name}
			if sp.Layer >= 0 {
				name = fmt.Sprintf("%s L%d", name, sp.Layer)
				args["layer"] = sp.Layer
			}
			events = append(events, chromeEvent{
				Name: name,
				Cat:  sp.Phase.String(),
				Ph:   "X",
				TS:   base + float64(sp.Offset.Microseconds()),
				Dur:  float64(sp.Dur.Microseconds()),
				PID:  rec.ID,
				TID:  sp.Rank,
				Args: args,
			})
		}
	}
	// Stable output: viewers don't require ordering, but deterministic
	// bytes make the export diffable and testable.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].PID != events[j].PID {
			return events[i].PID < events[j].PID
		}
		if (events[i].Ph == "M") != (events[j].Ph == "M") {
			return events[i].Ph == "M"
		}
		return events[i].TS < events[j].TS
	})
	blob, err := json.Marshal(chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
	if err != nil { // unreachable: all fields are marshalable
		return []byte(`{"traceEvents":[]}`)
	}
	return blob
}
