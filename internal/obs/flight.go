package obs

import (
	"fmt"
	"sync"
	"time"

	"voltage/internal/trace"
)

// Default ring capacities for NewFlightRecorder.
const (
	DefaultEventCap = 256
	DefaultTraceCap = 32
)

// Event is one structured cluster event in the flight recorder: health
// transitions, batch recoveries, degraded entries, sheds, failures.
type Event struct {
	// Seq is a monotonically increasing sequence number; gaps never occur
	// (eviction drops the oldest entries, not sequence numbers).
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind is a stable machine-matchable tag ("health", "batch_recovery",
	// "straggler", "shed", "request_failed", ...).
	Kind string `json:"kind"`
	// Rank is the device the event concerns, or -1 for cluster-wide events.
	Rank int    `json:"rank"`
	Msg  string `json:"msg"`
}

// TraceRecord is one retired request's trace as kept by the flight
// recorder: identity, outcome, and (when request tracing is enabled) the
// per-rank spans the Chrome exporter renders.
type TraceRecord struct {
	ID       uint64        `json:"id"`
	Kind     string        `json:"kind"` // runner name: classify, generate, batched-generate, ...
	Start    time.Time     `json:"start"`
	Latency  time.Duration `json:"latency"`
	Err      string        `json:"err,omitempty"`
	Degraded bool          `json:"degraded,omitempty"`
	Attempts int           `json:"attempts,omitempty"`
	Spans    []trace.Span  `json:"spans,omitempty"`
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring[T any] struct {
	buf     []T
	head    int // index of the oldest element
	n       int
	dropped uint64
}

func (r *ring[T]) push(v T) {
	if len(r.buf) == 0 {
		r.dropped++
		return
	}
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	r.dropped++
}

// snapshot returns the retained elements oldest-first.
func (r *ring[T]) snapshot() []T {
	if r.n == 0 {
		return nil
	}
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// FlightRecorder is the always-on bounded record of recent cluster events
// and request traces, dumpable on demand (/debug/flight) or automatically
// on failure. Safe for concurrent use; nil-receiver methods no-op.
type FlightRecorder struct {
	mu       sync.Mutex
	seq      uint64
	events   ring[Event]
	traces   ring[TraceRecord]
	lastDump time.Time
}

// NewFlightRecorder builds a recorder retaining the last eventCap events
// and traceCap request traces (<=0 picks the defaults).
func NewFlightRecorder(eventCap, traceCap int) *FlightRecorder {
	if eventCap <= 0 {
		eventCap = DefaultEventCap
	}
	if traceCap <= 0 {
		traceCap = DefaultTraceCap
	}
	return &FlightRecorder{
		events: ring[Event]{buf: make([]Event, eventCap)},
		traces: ring[TraceRecord]{buf: make([]TraceRecord, traceCap)},
	}
}

// Eventf records one structured event. Rank is the device concerned, or -1
// for cluster-wide events.
func (f *FlightRecorder) Eventf(kind string, rank int, format string, args ...any) {
	if f == nil {
		return
	}
	now := time.Now()
	f.mu.Lock()
	f.seq++
	f.events.push(Event{Seq: f.seq, Time: now, Kind: kind, Rank: rank, Msg: fmt.Sprintf(format, args...)})
	f.mu.Unlock()
}

// RecordTrace retains one retired request's trace.
func (f *FlightRecorder) RecordTrace(rec TraceRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.traces.push(rec)
	f.mu.Unlock()
}

// Traces returns the retained request traces, oldest first.
func (f *FlightRecorder) Traces() []TraceRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.traces.snapshot()
}

// Dump is a point-in-time flight-recorder snapshot. Dropped counters say
// how much history eviction has discarded beyond what is shown.
type Dump struct {
	Now           time.Time     `json:"now"`
	Events        []Event       `json:"events"`
	EventsDropped uint64        `json:"events_dropped,omitempty"`
	Traces        []TraceRecord `json:"traces,omitempty"`
	TracesDropped uint64        `json:"traces_dropped,omitempty"`
	// Profile is attached by the cluster so one dump carries both history
	// and the live per-rank picture.
	Profile *Profile `json:"profile,omitempty"`
}

// Dump snapshots the recorder.
func (f *FlightRecorder) Dump() Dump {
	if f == nil {
		return Dump{Now: time.Now()}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return Dump{
		Now:           time.Now(),
		Events:        f.events.snapshot(),
		EventsDropped: f.events.dropped,
		Traces:        f.traces.snapshot(),
		TracesDropped: f.traces.dropped,
	}
}

// ShouldDump rate-limits automatic failure dumps: it reports true at most
// once per cooldown, updating the limiter when it does.
func (f *FlightRecorder) ShouldDump(cooldown time.Duration) bool {
	if f == nil {
		return false
	}
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.lastDump.IsZero() && now.Sub(f.lastDump) < cooldown {
		return false
	}
	f.lastDump = now
	return true
}
