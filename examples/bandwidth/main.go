// Bandwidth study (the paper's Fig. 5): fix the cluster at K devices and
// sweep the emulated link bandwidth, comparing Voltage against tensor
// parallelism and the single-device reference. At edge bandwidths tensor
// parallelism's two All-Reduces per layer dominate; Voltage's single
// All-Gather crosses below the single-device line much earlier.
//
// Run with:
//
//	go run ./examples/bandwidth
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"voltage"
	"voltage/internal/tokenizer"
)

func main() {
	k := flag.Int("k", 4, "number of edge devices")
	layers := flag.Int("layers", 2, "stack depth")
	flag.Parse()
	if err := run(*k, *layers); err != nil {
		log.Fatal(err)
	}
}

func run(k, layers int) error {
	cfg := voltage.BERTLarge().Scaled(layers)

	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)

	// Calibrate so the paper's compute:comm balance holds on this host;
	// the printed bandwidths are paper-scale.
	cal := voltage.Calibrate(k)
	engine, err := voltage.NewEngine(cfg, k, voltage.ClusterOptions{
		Profile:     cal.Apply(voltage.NetworkProfile{BandwidthMbps: 500, Latency: 200 * time.Microsecond}),
		DeviceFlops: cal.DeviceFlops,
	})
	if err != nil {
		return err
	}
	defer engine.Close()

	tok, err := tokenizer.New(cfg.VocabSize)
	if err != nil {
		return err
	}
	ids := tok.EncodeWords(200, 11)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	single, err := engine.ClassifyTokens(ctx, voltage.StrategySingle, ids)
	if err != nil {
		return err
	}
	fmt.Printf("single-device reference: %v\n\n", single.Run.Latency.Round(time.Millisecond))
	fmt.Printf("%-10s %-14s %-14s\n", "Mbps", "voltage", "tensor-parallel")

	for _, mbps := range []float64{200, 400, 600, 800, 1000} {
		engine.Cluster().SetBandwidth(mbps * cal.BwScale)
		v, err := engine.ClassifyTokens(ctx, voltage.StrategyVoltage, ids)
		if err != nil {
			return err
		}
		tp, err := engine.ClassifyTokens(ctx, voltage.StrategyTensorParallel, ids)
		if err != nil {
			return err
		}
		mark := " "
		if v.Run.Latency < single.Run.Latency {
			mark = "*" // beats single device
		}
		fmt.Printf("%-10.0f %-14v %-14v %s\n", mbps,
			v.Run.Latency.Round(time.Millisecond), tp.Run.Latency.Round(time.Millisecond), mark)
	}
	fmt.Println("\n* = Voltage beats the single-device deployment at this bandwidth.")
	return nil
}
