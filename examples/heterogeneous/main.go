// Heterogeneous edge cluster: three devices where one is 4× slower — the
// realistic edge scenario §V-B's ratio-vector schemes were designed for.
// With the even scheme every layer waits for the straggler; the dynamic
// scheme (this repository's implementation of the paper's future-work
// remark) re-balances per layer from observed timings and recovers most of
// the loss, while computing exactly the same outputs.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"voltage"
	"voltage/internal/tokenizer"
)

func main() {
	layers := flag.Int("layers", 8, "stack depth")
	flag.Parse()
	if err := run(*layers); err != nil {
		log.Fatal(err)
	}
}

func run(layers int) error {
	cfg := voltage.Tiny().Scaled(layers)
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)

	// Device 2 runs at a quarter of the speed of the other two.
	base := 5e7
	rates := []float64{base, base, base / 4}

	tok, err := tokenizer.New(cfg.VocabSize)
	if err != nil {
		return err
	}
	ids := tok.EncodeWords(48, 3)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	measure := func(dynamic bool) (time.Duration, int, error) {
		engine, err := voltage.NewEngine(cfg, 3, voltage.ClusterOptions{
			HeteroDeviceFlops: rates,
			DynamicScheme:     dynamic,
		})
		if err != nil {
			return 0, 0, err
		}
		defer engine.Close()
		pred, err := engine.ClassifyTokens(ctx, voltage.StrategyVoltage, ids)
		if err != nil {
			return 0, 0, err
		}
		return pred.Run.Latency, pred.Class, nil
	}

	fmt.Printf("3 devices, rates %.0f/%.0f/%.0f MMAC/s, %d layers, N=%d\n\n",
		rates[0]/1e6, rates[1]/1e6, rates[2]/1e6, cfg.Layers, len(ids))

	evenLat, evenClass, err := measure(false)
	if err != nil {
		return err
	}
	fmt.Printf("even scheme   : %v (every layer waits for the slow device)\n", evenLat.Round(time.Millisecond))

	dynLat, dynClass, err := measure(true)
	if err != nil {
		return err
	}
	fmt.Printf("dynamic scheme: %v (%.0f%% faster)\n",
		dynLat.Round(time.Millisecond), 100*(1-float64(dynLat)/float64(evenLat)))

	if evenClass != dynClass {
		return fmt.Errorf("schemes disagree on the prediction: %d vs %d", evenClass, dynClass)
	}
	fmt.Println("\nIdentical predictions: re-balancing moves work, never changes results.")
	return nil
}
