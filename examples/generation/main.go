// Autoregressive generation at the edge: a GPT-2-shaped causal decoder
// produces tokens one by one, each forward pass distributed across the
// cluster with Voltage. Causal masking composes with every attention
// computation order, so the adaptive re-ordering of Theorem 2 applies to
// decoders unchanged.
//
// Run with:
//
//	go run ./examples/generation
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"voltage"
	"voltage/internal/tokenizer"
)

func main() {
	layers := flag.Int("layers", 2, "GPT-2 stack depth (0 = full 12 layers)")
	k := flag.Int("k", 3, "number of edge devices")
	steps := flag.Int("steps", 6, "tokens to generate")
	flag.Parse()
	if err := run(*layers, *k, *steps); err != nil {
		log.Fatal(err)
	}
}

func run(layers, k, steps int) error {
	cfg := voltage.GPT2()
	if layers > 0 {
		cfg = cfg.Scaled(layers)
	}

	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)

	engine, err := voltage.NewEngine(cfg, k, voltage.ClusterOptions{
		Profile: voltage.EdgeDefaultProfile,
	})
	if err != nil {
		return err
	}
	defer engine.Close()

	tok, err := tokenizer.New(cfg.VocabSize)
	if err != nil {
		return err
	}
	prompt := tok.Encode("the edge of the network is where inference happens")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	fmt.Printf("GPT-2 (%d layers) generating %d tokens over %d devices\n\n", cfg.Layers, steps, k)

	// Distributed generation.
	start := time.Now()
	dist, err := engine.Generate(ctx, voltage.StrategyVoltage, prompt, steps)
	if err != nil {
		return err
	}
	distTime := time.Since(start)

	// Single-device reference.
	start = time.Now()
	single, err := engine.Generate(ctx, voltage.StrategySingle, prompt, steps)
	if err != nil {
		return err
	}
	singleTime := time.Since(start)

	fmt.Printf("voltage (K=%d): %v  tokens %v\n", k, distTime.Round(time.Millisecond), dist.Tokens[len(prompt):])
	fmt.Printf("single device: %v  tokens %v\n", singleTime.Round(time.Millisecond), single.Tokens[len(prompt):])

	for i := range dist.Tokens {
		if dist.Tokens[i] != single.Tokens[i] {
			return fmt.Errorf("decoding diverged at position %d", i)
		}
	}

	// Distributed KV-cached decoding: one Voltage prefill, then each step
	// ships only a token id out and one hidden row back.
	cached, err := engine.GenerateCached(ctx, prompt, steps)
	if err != nil {
		return err
	}
	fmt.Printf("kv-cached:     prefill %v + decode %v  tokens %v\n",
		cached.PrefillLatency.Round(time.Millisecond),
		cached.DecodeLatency.Round(time.Millisecond),
		cached.Tokens[len(prompt):])
	for i := range cached.Tokens {
		if cached.Tokens[i] != single.Tokens[i] {
			return fmt.Errorf("cached decoding diverged at position %d", i)
		}
	}
	fmt.Println("\nAll three decodings are identical: distribution never changes model outputs.")
	return nil
}
