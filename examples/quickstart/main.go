// Quickstart: distribute a small transformer across three emulated edge
// devices and compare Voltage against single-device inference.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"voltage"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three emulated devices on a 500 Mbps edge network, each limited to
	// one CPU core — the paper's testbed in miniature.
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)

	engine, err := voltage.NewEngine(voltage.Tiny(), 3, voltage.ClusterOptions{
		Profile: voltage.EdgeDefaultProfile,
	})
	if err != nil {
		return err
	}
	defer engine.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// A toy classification request. Tokens would normally come from a
	// tokenizer; any ids below the vocab size work.
	request := []int{2, 17, 33, 49, 5, 3}

	for _, strategy := range []voltage.Strategy{voltage.StrategySingle, voltage.StrategyVoltage} {
		pred, err := engine.ClassifyTokens(ctx, strategy, request)
		if err != nil {
			return fmt.Errorf("%v: %w", strategy, err)
		}
		fmt.Printf("%-8v → class %d  latency %-8v  bytes moved by workers %d\n",
			strategy, pred.Class, pred.Run.Latency.Round(time.Microsecond), pred.Run.TotalBytesSent())
	}

	// The two strategies compute the same mathematical function: Voltage
	// never changes model outputs, only where the math runs.
	fmt.Println("\nBoth strategies produced identical predictions — Voltage is exact.")
	return nil
}
