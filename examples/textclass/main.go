// Text classification at the edge: a BERT-Large-shaped encoder distributed
// over a six-device cluster, the paper's headline workload (Fig. 4a).
//
// The full 24-layer BERT-Large is heavy for pure-Go kernels, so the stack
// is depth-scaled to 2 layers by default — per-layer behaviour (which is
// what the paper's figures show) is unchanged. Pass -layers 0 for paper
// depth if you have minutes to spare.
//
// Run with:
//
//	go run ./examples/textclass
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"voltage"
	"voltage/internal/tokenizer"
)

func main() {
	layers := flag.Int("layers", 2, "BERT stack depth (0 = full 24 layers)")
	k := flag.Int("k", 6, "number of edge devices")
	flag.Parse()
	if err := run(*layers, *k); err != nil {
		log.Fatal(err)
	}
}

func run(layers, k int) error {
	cfg := voltage.BERTLarge()
	if layers > 0 {
		cfg = cfg.Scaled(layers)
	}

	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)

	// Pace each emulated device at a fixed rate that fits this host's
	// cores, and scale the 500 Mbps link to match — this keeps the paper's
	// compute:communication balance regardless of hardware.
	cal := voltage.Calibrate(k)
	fmt.Printf("calibration: device rate %.2f GMAC/s, emulated 500 Mbps → %.1f Mbps\n",
		cal.DeviceFlops/1e9, 500*cal.BwScale)

	engine, err := voltage.NewEngine(cfg, k, voltage.ClusterOptions{
		Profile:     cal.Apply(voltage.EdgeDefaultProfile), // 500 Mbps, the paper's default
		DeviceFlops: cal.DeviceFlops,
	})
	if err != nil {
		return err
	}
	defer engine.Close()

	// The paper's workload: a 200-word request.
	tok, err := tokenizer.New(cfg.VocabSize)
	if err != nil {
		return err
	}
	request := tok.Encode(
		"edge devices are everywhere but a single one is too slow to run " +
			"a large transformer so voltage partitions every layer across " +
			"the room and gathers the pieces between layers")
	ids := tok.EncodeWords(200, 42)
	_ = request // the synthetic 200-word request matches the paper's setup

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	fmt.Printf("BERT-Large (%d layers, F=%d, H=%d) over %d devices, N=%d\n\n",
		cfg.Layers, cfg.F, cfg.Heads, k, len(ids))

	var singleLatency time.Duration
	for _, strategy := range []voltage.Strategy{
		voltage.StrategySingle, voltage.StrategyVoltage, voltage.StrategyTensorParallel,
	} {
		pred, err := engine.ClassifyTokens(ctx, strategy, ids)
		if err != nil {
			return fmt.Errorf("%v: %w", strategy, err)
		}
		line := fmt.Sprintf("%-16v latency %-10v class %d  worker traffic %8d B",
			strategy, pred.Run.Latency.Round(time.Millisecond), pred.Class, pred.Run.TotalBytesSent())
		if strategy == voltage.StrategySingle {
			singleLatency = pred.Run.Latency
		} else {
			speedup := float64(singleLatency) / float64(pred.Run.Latency)
			line += fmt.Sprintf("  (%.2f× vs single)", speedup)
		}
		fmt.Println(line)
	}
	return nil
}
