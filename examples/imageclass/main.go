// Image classification at the edge: ViT-Base/16 on a 224×224 image
// distributed position-wise across devices (the paper's Fig. 4b workload).
// The 196 image patches plus the class token form a 197-position sequence
// that Voltage slices across the cluster.
//
// Run with:
//
//	go run ./examples/imageclass
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"voltage"
)

func main() {
	layers := flag.Int("layers", 2, "ViT stack depth (0 = full 12 layers)")
	k := flag.Int("k", 4, "number of edge devices")
	flag.Parse()
	if err := run(*layers, *k); err != nil {
		log.Fatal(err)
	}
}

func run(layers, k int) error {
	cfg := voltage.ViTBase()
	if layers > 0 {
		cfg = cfg.Scaled(layers)
	}

	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)

	engine, err := voltage.NewEngine(cfg, k, voltage.ClusterOptions{
		Profile: voltage.EdgeDefaultProfile,
	})
	if err != nil {
		return err
	}
	defer engine.Close()

	// The paper's test input: one 224×224 image (synthetic; latency does
	// not depend on pixel values).
	img := voltage.RandomImage(7, cfg.Channels, cfg.ImageSize)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	fmt.Printf("ViT-Base/16 (%d layers) on a %dx%d image → %d positions, %d devices\n\n",
		cfg.Layers, cfg.ImageSize, cfg.ImageSize, cfg.SeqLen(0), k)

	single, err := engine.ClassifyImage(ctx, voltage.StrategySingle, img)
	if err != nil {
		return err
	}
	fmt.Printf("single device:    class %4d  latency %v\n",
		single.Class, single.Run.Latency.Round(time.Millisecond))

	dist, err := engine.ClassifyImage(ctx, voltage.StrategyVoltage, img)
	if err != nil {
		return err
	}
	fmt.Printf("voltage (K=%d):    class %4d  latency %v  (%.2f× speed-up)\n",
		k, dist.Class, dist.Run.Latency.Round(time.Millisecond),
		float64(single.Run.Latency)/float64(dist.Run.Latency))

	if single.Class != dist.Class {
		return fmt.Errorf("distribution changed the prediction: %d vs %d", single.Class, dist.Class)
	}
	fmt.Println("\nPredictions agree: position-wise partitioning is exact.")
	return nil
}
